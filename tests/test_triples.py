"""TripleSet tests, incl. hypothesis set-algebra properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import TripleSet

triple_strategy = st.tuples(
    st.integers(0, 10), st.integers(0, 4), st.integers(0, 10)
)
tripleset_strategy = st.lists(triple_strategy, max_size=30).map(TripleSet)


class TestBasics:
    def test_empty(self):
        ts = TripleSet()
        assert len(ts) == 0
        assert ts.entities() == set()
        assert ts.relation_ids() == set()
        assert ts.array.shape == (0, 3)

    def test_membership(self):
        ts = TripleSet([(1, 0, 2)])
        assert (1, 0, 2) in ts
        assert (2, 0, 1) not in ts

    def test_deduplication(self):
        ts = TripleSet([(1, 0, 2), (1, 0, 2)])
        # Array keeps occurrences but set-semantics equality holds.
        assert (1, 0, 2) in ts

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            TripleSet([(1, 2)])

    def test_from_array_validates_shape(self):
        with pytest.raises(ValueError):
            TripleSet.from_array(np.zeros((2, 4)))

    def test_columns(self):
        ts = TripleSet([(1, 2, 3), (4, 5, 6)])
        assert ts.heads.tolist() == [1, 4]
        assert ts.relations.tolist() == [2, 5]
        assert ts.tails.tolist() == [3, 6]

    def test_entities_and_relations(self):
        ts = TripleSet([(1, 0, 2), (2, 1, 3)])
        assert ts.entities() == {1, 2, 3}
        assert ts.relation_ids() == {0, 1}

    def test_iteration_yields_python_ints(self):
        ts = TripleSet([(1, 0, 2)])
        triple = next(iter(ts))
        assert all(isinstance(x, int) for x in triple)

    def test_getitem(self):
        ts = TripleSet([(1, 0, 2), (3, 1, 4)])
        assert ts[1] == (3, 1, 4)

    def test_equality_is_set_based(self):
        assert TripleSet([(1, 0, 2), (3, 1, 4)]) == TripleSet([(3, 1, 4), (1, 0, 2)])


class TestAlgebra:
    def test_union(self):
        a = TripleSet([(1, 0, 2)])
        b = TripleSet([(3, 0, 4)])
        assert len(a.union(b)) == 2

    def test_difference(self):
        a = TripleSet([(1, 0, 2), (3, 0, 4)])
        b = TripleSet([(1, 0, 2)])
        assert a.difference(b) == TripleSet([(3, 0, 4)])

    def test_filter_relations(self):
        a = TripleSet([(1, 0, 2), (3, 1, 4), (5, 2, 6)])
        assert a.filter_relations({0, 2}) == TripleSet([(1, 0, 2), (5, 2, 6)])

    def test_sample_respects_count(self):
        rng = np.random.default_rng(0)
        a = TripleSet([(i, 0, i + 1) for i in range(10)])
        assert len(a.sample(4, rng)) == 4

    def test_sample_caps_at_len(self):
        rng = np.random.default_rng(0)
        a = TripleSet([(1, 0, 2)])
        assert len(a.sample(10, rng)) == 1

    @given(a=tripleset_strategy, b=tripleset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_union_commutes(self, a, b):
        assert a.union(b) == b.union(a)

    @given(a=tripleset_strategy, b=tripleset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        diff = a.difference(b)
        assert all(t not in b for t in diff)

    @given(a=tripleset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_filter_identity(self, a):
        assert a.filter(lambda t: True) == a
        assert len(a.filter(lambda t: False)) == 0
