"""Serial/parallel equivalence suite for :mod:`repro.parallel`.

Every parallel entry point must reproduce its serial counterpart across
worker counts {1, 2, 4}, including odd batch sizes and shards that come
out empty (fewer items than ranks):

* sharded prepare     — identical samples, field by field;
* data-parallel step  — equivalent gradients/parameters (float-summation
  order differs across shards, so tolerance-based; workers=1 is bitwise);
* parallel evaluation — **bitwise** identical metrics (candidate drawing
  stays in the parent; per-query scoring is batch-composition-independent);
* serving pool        — fused-path scores within engine round-off, with
  the registry-snapshot guard for late registrations.

Quick deterministic cases run in tier-1 (marked ``parallel``); the
hypothesis-randomized sweeps are additionally marked ``slow`` and run in
the CI parallel-and-slow job.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from engine_tolerances import score_tolerance
from repro.core import RMPI, RMPIConfig
from repro.eval.protocol import (
    evaluate_entity_prediction,
    evaluate_triple_classification,
)
from repro.kg import KnowledgeGraph, TripleSet
from repro.parallel import (
    ParallelEvaluator,
    ShardedPreparer,
    WorkerError,
    WorkerPool,
    merge_shards,
    reduce_gradients,
    shard_list,
    shard_sizes,
)
from repro.parallel.pool import register_op
from repro.parallel.trainer import DataParallelTrainer
from repro.serve import ModelRegistry, ServingApp, ServingConfig
from repro.train import ParallelConfig, TrainingConfig
from repro.train.trainer import Trainer

pytestmark = pytest.mark.parallel


@register_op("parity.tag")
def _tag_op(state, payload):
    """Echo (context tag, payload) — exercises fork-time context capture."""
    return (state["context"]["tag"], payload)

WORKER_COUNTS = (1, 2, 4)

TRIPLES = [
    (0, 0, 1), (2, 1, 0), (1, 2, 2), (3, 4, 1), (0, 3, 3),
    (0, 3, 4), (1, 5, 5), (5, 6, 1), (2, 2, 3), (4, 1, 5),
    (3, 0, 5), (4, 5, 2),
]


def small_graph() -> KnowledgeGraph:
    return KnowledgeGraph(TripleSet(TRIPLES), num_entities=6, num_relations=7)


def make_model(dropout: float = 0.0, variant_seed: int = 0) -> RMPI:
    # dropout=0 so the only difference between serial and sharded training
    # is float summation order (dropout masks draw from per-rank streams).
    return RMPI(
        7,
        np.random.default_rng(variant_seed),
        RMPIConfig(embed_dim=8, dropout=dropout, use_disclosing=True),
    )


def capped(workers: int, max_workers: int) -> int:
    if workers > max_workers:
        pytest.skip(f"--workers caps the sweep at {max_workers}")
    return workers


def assert_samples_equal(reference, produced):
    assert len(reference) == len(produced)
    for ref, got in zip(reference, produced):
        assert ref.triple == got.triple
        assert ref.enclosing_empty == got.enclosing_empty
        assert np.array_equal(ref.plan.node_ids, got.plan.node_ids)
        assert np.array_equal(ref.plan.node_relations, got.plan.node_relations)
        assert np.array_equal(ref.plan.hops, got.plan.hops)
        assert ref.plan.target_index == got.plan.target_index
        assert len(ref.plan.layers) == len(got.plan.layers)
        for ref_layer, got_layer in zip(ref.plan.layers, got.plan.layers):
            assert np.array_equal(ref_layer.edges, got_layer.edges)
            assert np.array_equal(ref_layer.update_nodes, got_layer.update_nodes)
        if ref.disclosing_relations is None:
            assert got.disclosing_relations is None
        else:
            assert np.array_equal(ref.disclosing_relations, got.disclosing_relations)


# ----------------------------------------------------------------------
class TestSharding:
    def test_balanced_contiguous(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(3, 4) == [1, 1, 1, 0]
        assert shard_sizes(0, 2) == [0, 0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_sizes(5, 0)
        with pytest.raises(ValueError):
            shard_sizes(-1, 2)

    @given(
        num_items=st.integers(min_value=0, max_value=64),
        num_shards=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_inverts_shard(self, num_items, num_shards):
        items = list(range(num_items))
        shards = shard_list(items, num_shards)
        assert len(shards) == num_shards
        assert max(map(len, shards)) - min(map(len, shards)) <= 1
        assert merge_shards(shards) == items


# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_unknown_op(self):
        with WorkerPool(1) as pool:
            with pytest.raises(KeyError):
                pool.run("no-such-op", [None])

    def test_too_many_payloads(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                pool.run("prepare", [[], []])

    @pytest.mark.parametrize("workers", (1, 2))
    def test_op_errors_propagate(self, workers, max_workers):
        workers = capped(workers, max_workers)
        with WorkerPool(workers, context={"model": None, "graph": None}) as pool:
            # A None model makes the prepare op raise inside the worker.
            with pytest.raises((WorkerError, AttributeError)):
                pool.run("prepare", [[(0, 0, 1)]] * workers)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, context={})
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run("prepare", [[]])

    def test_concurrent_spawns_keep_contexts_distinct(self, max_workers):
        """Regression: ``_spawn`` used to publish the module-global
        ``_FORK_CONTEXT`` without a lock, so two pools forking at the same
        time could capture each other's context (or ``None``)."""
        workers = capped(2, max_workers)
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def launch(tag):
            try:
                barrier.wait(timeout=30)
                with WorkerPool(workers, context={"tag": tag}) as pool:
                    results[tag] = pool.run("parity.tag", [tag] * workers)
            except Exception as exc:  # noqa: BLE001 - surfaced via `errors`
                errors.append(exc)

        threads = [
            threading.Thread(target=launch, args=(f"pool-{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert set(results) == {"pool-0", "pool-1"}
        for tag, produced in results.items():
            assert produced == [(tag, tag)] * workers


# ----------------------------------------------------------------------
class TestShardedPrepare:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("batch", (0, 1, 3, 7))  # odd + fewer-than-ranks
    def test_matches_serial_prepare(self, workers, batch, max_workers):
        workers = capped(workers, max_workers)
        graph = small_graph()
        targets = [TRIPLES[i % len(TRIPLES)] for i in range(batch)]
        reference = make_model().prepare_many(graph, targets)
        model = make_model()
        with ShardedPreparer(model, graph, workers=workers) as preparer:
            produced = preparer.prepare_many(graph, targets)
        assert_samples_equal(reference, produced)

    def test_populates_parent_cache(self):
        graph = small_graph()
        model = make_model()
        with ShardedPreparer(model, graph, workers=2) as preparer:
            preparer.prepare_many(graph, TRIPLES[:5])
        assert model.cache_size() == 5
        # Scoring after a parallel prepare must not re-prepare anything.
        before = model.cache_size()
        model.score_triples(graph, TRIPLES[:5])
        assert model.cache_size() == before

    def test_rejects_foreign_graph(self):
        graph = small_graph()
        model = make_model()
        with ShardedPreparer(model, graph, workers=2) as preparer:
            with pytest.raises(ValueError):
                preparer.prepare_many(small_graph(), TRIPLES[:2])

    @pytest.mark.slow
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from(WORKER_COUNTS),
        batch=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=10, deadline=None)
    def test_randomized_graphs(self, seed, workers, batch):
        rng = np.random.default_rng(seed)
        num_entities, num_relations = 8, 5
        rows = rng.integers(0, [num_entities, num_relations, num_entities], (20, 3))
        graph = KnowledgeGraph(
            TripleSet([tuple(map(int, row)) for row in rows]),
            num_entities=num_entities,
            num_relations=num_relations,
        )
        targets = [
            tuple(map(int, rows[i % len(rows)])) for i in range(batch)
        ]
        reference = RMPI(
            num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=8)
        ).prepare_many(graph, targets)
        model = RMPI(
            num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=8)
        )
        with ShardedPreparer(model, graph, workers=workers) as preparer:
            assert_samples_equal(reference, preparer.prepare_many(graph, targets))


# ----------------------------------------------------------------------
class TestDataParallelGradients:
    def _configs(self, workers):
        serial = TrainingConfig(epochs=2, batch_size=5, seed=3)  # odd batch
        parallel = TrainingConfig(
            epochs=2, batch_size=5, seed=3, parallel=ParallelConfig(workers=workers)
        )
        return serial, parallel

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parameters_match_serial_trainer(self, workers, max_workers):
        workers = capped(workers, max_workers)
        graph = small_graph()
        train = TripleSet(TRIPLES[:9])
        serial_cfg, parallel_cfg = self._configs(workers)

        serial_model = make_model()
        serial_history = Trainer(serial_model, graph, train, config=serial_cfg).fit()
        parallel_model = make_model()
        parallel_history = DataParallelTrainer(
            parallel_model, graph, train, config=parallel_cfg
        ).fit()

        assert serial_history.losses == pytest.approx(
            parallel_history.losses, rel=1e-5, abs=1e-6
        )
        reference = serial_model.state_dict()
        produced = parallel_model.state_dict()
        for name in reference:
            np.testing.assert_allclose(
                produced[name], reference[name], **score_tolerance(),
                err_msg=f"parameter {name} diverged at workers={workers}",
            )

    def test_workers_1_is_bitwise_serial(self):
        graph = small_graph()
        train = TripleSet(TRIPLES[:9])
        serial_cfg, parallel_cfg = self._configs(1)
        serial_model = make_model()
        Trainer(serial_model, graph, train, config=serial_cfg).fit()
        parallel_model = make_model()
        DataParallelTrainer(parallel_model, graph, train, config=parallel_cfg).fit()
        reference = serial_model.state_dict()
        produced = parallel_model.state_dict()
        for name in reference:
            assert np.array_equal(produced[name], reference[name]), name

    def test_batch_smaller_than_ranks(self, max_workers):
        workers = capped(4, max_workers)
        graph = small_graph()
        train = TripleSet(TRIPLES[:2])  # 2 pairs over 4 ranks: 2 empty shards
        config = TrainingConfig(
            epochs=1, batch_size=16, seed=0, parallel=ParallelConfig(workers=workers)
        )
        model = make_model()
        history = DataParallelTrainer(model, graph, train, config=config).fit()
        assert len(history.losses) == 1
        serial_model = make_model()
        Trainer(
            serial_model, graph, train, config=TrainingConfig(epochs=1, batch_size=16, seed=0)
        ).fit()
        for name, value in serial_model.state_dict().items():
            np.testing.assert_allclose(
                model.state_dict()[name], value, **score_tolerance()
            )

    def test_reduce_gradients_weighting(self):
        shard_a = {"loss": 2.0, "pairs": 3, "grads": {"w": np.ones(2), "b": None}}
        shard_b = {"loss": 4.0, "pairs": 1, "grads": {"w": np.full(2, 5.0), "b": None}}
        empty = {"loss": 0.0, "pairs": 0, "grads": {}}
        grads, loss, pairs = reduce_gradients([shard_a, shard_b, empty])
        assert pairs == 4
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grads["w"], np.full(2, 2.0))
        assert grads["b"] is None

    def test_reduce_gradients_all_empty(self):
        grads, loss, pairs = reduce_gradients([{"loss": 0.0, "pairs": 0, "grads": {}}])
        assert (grads, loss, pairs) == ({}, 0.0, 0)

    def test_reduce_gradients_mixed_none_and_array_any_order(self):
        """A parameter one shard never touched must reduce the same no
        matter which shard reports first (None ≡ implicit zero)."""
        with_grad = {"loss": 1.0, "pairs": 1, "grads": {"w": np.ones(2)}}
        without = {"loss": 3.0, "pairs": 1, "grads": {"w": None}}
        first, loss_a, _ = reduce_gradients([without, with_grad])
        second, loss_b, _ = reduce_gradients([with_grad, without])
        np.testing.assert_allclose(first["w"], np.full(2, 0.5))
        np.testing.assert_allclose(second["w"], first["w"])
        assert loss_a == pytest.approx(loss_b) == pytest.approx(2.0)

    def test_reduce_gradients_never_mutates_shard_arrays(self):
        """Aliasing guard: shard gradients may be read-only views of the
        shm backend's shared buffers — the in-place accumulation must only
        ever touch parent-owned arrays."""
        grad_a = np.ones(3)
        grad_b = np.full(3, 5.0)
        grad_a.setflags(write=False)  # a write would raise, like shm views
        grad_b.setflags(write=False)
        shards = [
            {"loss": 1.0, "pairs": 1, "grads": {"w": grad_a}},
            {"loss": 2.0, "pairs": 3, "grads": {"w": grad_b}},
        ]
        grads, _, _ = reduce_gradients(shards)
        np.testing.assert_allclose(grads["w"], np.full(3, 4.0))
        np.testing.assert_array_equal(grad_a, np.ones(3))
        np.testing.assert_array_equal(grad_b, np.full(3, 5.0))
        assert grads["w"] is not grad_a and grads["w"] is not grad_b


# ----------------------------------------------------------------------
class TestBackendParity:
    """The zero-copy gate: pickle and shm parameter transport must produce
    **bitwise identical** training, because the workers compute on the same
    parameter values through the same ops either way."""

    def _fit(self, workers, backend, dropout=0.0):
        graph = small_graph()
        train = TripleSet(TRIPLES[:9])
        config = TrainingConfig(
            epochs=2,
            batch_size=5,
            seed=3,
            parallel=ParallelConfig(workers=workers, backend=backend),
        )
        model = make_model(dropout=dropout)
        history = DataParallelTrainer(model, graph, train, config=config).fit()
        return model.state_dict(), history

    def _assert_states_bitwise(self, reference, produced):
        assert set(reference) == set(produced)
        for name in reference:
            assert np.array_equal(produced[name], reference[name]), name

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_checkpoints_bitwise_identical(self, workers, max_workers):
        workers = capped(workers, max_workers)
        pickle_state, pickle_history = self._fit(workers, "pickle")
        shm_state, shm_history = self._fit(workers, "shm")
        assert pickle_history.losses == shm_history.losses  # exact, not approx
        self._assert_states_bitwise(pickle_state, shm_state)

    def test_parity_holds_with_dropout(self, max_workers):
        # Dropout draws from per-rank RNG streams that are independent of
        # the parameter transport, so parity stays bitwise.
        workers = capped(2, max_workers)
        pickle_state, _ = self._fit(workers, "pickle", dropout=0.3)
        shm_state, _ = self._fit(workers, "shm", dropout=0.3)
        self._assert_states_bitwise(pickle_state, shm_state)

    def test_shm_rerun_is_bitwise_deterministic(self, max_workers):
        workers = capped(2, max_workers)
        first_state, first_history = self._fit(workers, "shm", dropout=0.3)
        second_state, second_history = self._fit(workers, "shm", dropout=0.3)
        assert first_history.losses == second_history.losses
        self._assert_states_bitwise(first_state, second_state)

    def test_env_var_drives_auto_backend(self, monkeypatch, max_workers):
        workers = capped(2, max_workers)
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "shm")
        auto_state, _ = self._fit(workers, "auto")
        explicit_state, _ = self._fit(workers, "shm")
        self._assert_states_bitwise(explicit_state, auto_state)


# ----------------------------------------------------------------------
class TestParallelEvaluation:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("num_queries", (1, 2, 3, 5))  # incl. < ranks
    def test_ranking_bitwise(self, workers, num_queries, max_workers):
        workers = capped(workers, max_workers)
        graph = small_graph()
        targets = TripleSet(TRIPLES[:num_queries])
        reference = evaluate_entity_prediction(
            make_model(), graph, targets, np.random.default_rng(5), num_negatives=7
        )
        model = make_model()
        with ParallelEvaluator(model, graph, workers=workers) as evaluator:
            produced = evaluator.entity_prediction(
                targets, np.random.default_rng(5), num_negatives=7
            )
        assert produced == reference  # bitwise: dataclass equality on floats

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_classification_bitwise(self, workers, max_workers):
        workers = capped(workers, max_workers)
        graph = small_graph()
        targets = TripleSet(TRIPLES[:6])
        reference = evaluate_triple_classification(
            make_model(), graph, targets, np.random.default_rng(9)
        )
        model = make_model()
        with ParallelEvaluator(model, graph, workers=workers) as evaluator:
            produced = evaluator.triple_classification(
                targets, np.random.default_rng(9)
            )
        assert produced == reference

    @pytest.mark.slow
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    @settings(max_examples=8, deadline=None)
    def test_ranking_bitwise_randomized(self, seed, workers):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, [6, 7, 6], (14, 3))
        graph = KnowledgeGraph(
            TripleSet([tuple(map(int, row)) for row in rows]),
            num_entities=6,
            num_relations=7,
        )
        targets = TripleSet([tuple(map(int, row)) for row in rows[:4]])
        reference = evaluate_entity_prediction(
            make_model(), graph, targets, np.random.default_rng(seed), num_negatives=5
        )
        model = make_model()
        with ParallelEvaluator(model, graph, workers=workers) as evaluator:
            produced = evaluator.entity_prediction(
                targets, np.random.default_rng(seed), num_negatives=5
            )
        assert produced == reference


# ----------------------------------------------------------------------
class TestServingPool:
    def _registry_and_graph(self):
        graph = small_graph()
        registry = ModelRegistry()
        registry.register("rmpi", make_model())
        return registry, graph

    @pytest.mark.parametrize("workers", (2, 4))
    def test_scores_match_serial_session(self, workers, max_workers):
        workers = capped(workers, max_workers)
        queries = [(0, 0, 2), (1, 2, 3), (3, 4, 0), (2, 1, 5), (4, 3, 1), (5, 6, 0)]
        registry, graph = self._registry_and_graph()
        serial_app = ServingApp(
            registry, graph, ServingConfig(default_model="rmpi", workers=1)
        )
        reference = serial_app.session.score(queries)
        serial_app.close()

        registry2, graph2 = self._registry_and_graph()
        app = ServingApp(
            registry2, graph2, ServingConfig(default_model="rmpi", workers=workers)
        )
        assert app.session.scoring_pool is not None
        produced = app.session.score(queries)
        app.close()
        np.testing.assert_allclose(produced, reference, **score_tolerance())

    def test_late_registration_falls_back_to_serial(self):
        registry, graph = self._registry_and_graph()
        app = ServingApp(
            registry, graph, ServingConfig(default_model="rmpi", workers=2)
        )
        # Registered AFTER the pool forked: invisible to workers, must be
        # scored serially in the parent instead of erroring.
        registry.register("late", make_model(variant_seed=1))
        queries = [(0, 0, 2), (1, 2, 3), (3, 4, 0)]
        produced = app.session.score(queries, model="late")
        app.close()
        reference = make_model(variant_seed=1).score_triples_fused(graph, queries)
        np.testing.assert_allclose(produced, reference, **score_tolerance())

    def test_set_graph_detaches_and_closes_pool(self):
        registry, graph = self._registry_and_graph()
        app = ServingApp(
            registry, graph, ServingConfig(default_model="rmpi", workers=2)
        )
        pool = app.session.scoring_pool
        assert pool is not None
        app.session.set_graph(small_graph())
        # The workers were pinned to the OLD graph: detached AND closed.
        assert app.session.scoring_pool is None
        with pytest.raises(RuntimeError):
            pool.run("serve_score", [{"model": "rmpi", "triples": []}])
        # Scoring still works (serially) against the new graph.
        assert app.session.score([(0, 0, 2)]).shape == (1,)
        app.close()
