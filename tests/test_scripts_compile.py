"""Every example and benchmark script must at least compile.

Full executions are exercised manually / by the benchmark suite; this
guards against bit-rot (renamed imports, syntax errors) at test speed.
"""

import os
import py_compile

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _scripts(directory):
    path = os.path.join(ROOT, directory)
    return sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if name.endswith(".py")
    )


@pytest.mark.parametrize("script", _scripts("examples"), ids=os.path.basename)
def test_example_compiles(script):
    py_compile.compile(script, doraise=True)


@pytest.mark.parametrize("script", _scripts("benchmarks"), ids=os.path.basename)
def test_benchmark_script_compiles(script):
    py_compile.compile(script, doraise=True)


@pytest.mark.parametrize("script", _scripts("examples"), ids=os.path.basename)
def test_example_has_module_docstring(script):
    with open(script, "r", encoding="utf-8") as handle:
        source = handle.read()
    assert source.lstrip().startswith('"""'), f"{script} lacks a docstring"
