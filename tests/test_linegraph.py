"""Relation-view (line-graph) transformation tests (paper Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import KnowledgeGraph, TripleSet
from repro.subgraph import (
    EDGE_TYPE_NAMES,
    NUM_EDGE_TYPES,
    build_relational_graph,
    connection_types,
    extract_enclosing_subgraph,
    target_one_hop_relations,
)
from repro.subgraph.linegraph import H_H, H_T, LOOP, PARA, T_H, T_T


class TestConnectionTypes:
    """The six patterns of Fig. 3c."""

    def test_h_h(self):
        assert connection_types((0, 1, 2), (0, 5, 3)) == [H_H]

    def test_h_t(self):
        assert connection_types((0, 1, 2), (3, 5, 0)) == [H_T]

    def test_t_h(self):
        assert connection_types((0, 1, 2), (2, 5, 3)) == [T_H]

    def test_t_t(self):
        assert connection_types((0, 1, 2), (3, 5, 2)) == [T_T]

    def test_para_subsumes_hh_tt(self):
        assert connection_types((0, 1, 2), (0, 5, 2)) == [PARA]

    def test_loop_subsumes_ht_th(self):
        assert connection_types((0, 1, 2), (2, 5, 0)) == [LOOP]

    def test_disjoint_triples_no_edge(self):
        assert connection_types((0, 1, 2), (3, 5, 4)) == []

    def test_mirror_symmetry(self):
        # a->b H-T corresponds to b->a T-H.
        assert connection_types((0, 1, 2), (3, 5, 0)) == [H_T]
        assert connection_types((3, 5, 0), (0, 1, 2)) == [T_H]

    def test_multiple_shared_entities_multiple_types(self):
        # Shared head AND a's tail is b's tail? (0,r,2) vs (0,r,2) is PARA;
        # try h1==h2 plus t1==h2 impossible; use h1==h2 and t1 appears as
        # b's head: a=(0,1,5), b=(0,5,5) -> H-H (heads), T-T? t1=5,t2=5 yes.
        types = connection_types((0, 1, 5), (0, 5, 5))
        assert types == [PARA] or set(types) == {H_H, T_T}

    def test_names_table(self):
        assert len(EDGE_TYPE_NAMES) == NUM_EDGE_TYPES == 6


class TestBuildRelationalGraph:
    def test_fig3_example(self, family_graph):
        # Fig. 3: 2-hop enclosing subgraph of (A, husband_of, B).
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rg = build_relational_graph(sub)
        # Target node + one node per subgraph triple.
        assert rg.num_nodes == len(sub.triples) + 1
        assert rg.target_node == 0
        assert rg.node_relations[0] == 0  # husband_of

    def test_target_node_present_even_when_empty(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 0, 3), num_hops=2)
        rg = build_relational_graph(sub)
        assert rg.num_nodes == 1
        assert rg.num_edges == 0

    def test_edges_only_between_coincident_triples(self, family_graph):
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rg = build_relational_graph(sub)
        for src, etype, dst in rg.edges:
            a, b = rg.node_triples[src], rg.node_triples[dst]
            shared = ({a[0], a[2]} & {b[0], b[2]})
            assert shared, f"edge {src}->{dst} between non-coincident triples"
            assert etype in connection_types(a, b)

    def test_edges_are_symmetric_as_pairs(self, family_graph):
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rg = build_relational_graph(sub)
        pairs = {(int(s), int(d)) for s, _e, d in rg.edges}
        assert all((d, s) in pairs for s, d in pairs)

    def test_incoming(self, family_graph):
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rg = build_relational_graph(sub)
        incoming = rg.incoming(rg.target_node)
        assert (incoming[:, 2] == rg.target_node).all()

    def test_no_self_edges(self, family_graph):
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rg = build_relational_graph(sub)
        assert all(src != dst for src, _e, dst in rg.edges)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_property_edge_types_valid(self, seed):
        rng = np.random.default_rng(seed)
        triples = TripleSet(
            {
                (int(rng.integers(6)), int(rng.integers(3)), int(rng.integers(6)))
                for _ in range(10)
            }
        )
        g = KnowledgeGraph.from_triples(triples, num_entities=6, num_relations=3)
        if len(g.triples) == 0:
            return
        target = g.triples[0]
        sub = extract_enclosing_subgraph(g, target, num_hops=2)
        rg = build_relational_graph(sub)
        for src, etype, dst in rg.edges:
            assert 0 <= etype < NUM_EDGE_TYPES
            assert etype in connection_types(
                rg.node_triples[src], rg.node_triples[dst]
            )


class TestTargetOneHop:
    def test_only_incident_relations(self, family_graph):
        from repro.subgraph import extract_disclosing_subgraph

        sub = extract_disclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rels = target_one_hop_relations(sub)
        # Every reported relation labels an edge touching A or B.
        for rel in rels:
            assert any(
                r == rel and (h in (0, 1) or t in (0, 1)) for h, r, t in sub.triples
            )

    def test_matches_relational_graph_neighborhood(self, family_graph):
        from repro.subgraph import extract_disclosing_subgraph

        sub = extract_disclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        rels = sorted(target_one_hop_relations(sub))
        rg = build_relational_graph(sub)
        incoming = rg.incoming(rg.target_node)
        via_graph = sorted(rg.node_relations[incoming[:, 0]].tolist())
        assert rels == via_graph
