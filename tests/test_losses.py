"""Loss function tests."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    binary_cross_entropy_with_logits,
    margin_ranking_loss,
    mse_loss,
)


class TestMarginRankingLoss:
    def test_zero_when_margin_satisfied(self):
        pos = Tensor(np.array([[10.0], [12.0]]))
        neg = Tensor(np.array([[-5.0], [-3.0]]))
        loss = margin_ranking_loss(pos, neg, margin=10.0)
        assert loss.data == pytest.approx(0.0)

    def test_hinge_value(self):
        pos = Tensor(np.array([[1.0]]))
        neg = Tensor(np.array([[0.0]]))
        # max(0, 0 - 1 + 10) = 9
        loss = margin_ranking_loss(pos, neg, margin=10.0)
        assert loss.data == pytest.approx(9.0)

    def test_mean_over_batch(self):
        pos = Tensor(np.array([[1.0], [100.0]]))
        neg = Tensor(np.array([[0.0], [0.0]]))
        loss = margin_ranking_loss(pos, neg, margin=10.0)
        assert loss.data == pytest.approx(4.5)  # (9 + 0) / 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            margin_ranking_loss(Tensor(np.ones((2, 1))), Tensor(np.ones((3, 1))))

    def test_gradient_pushes_scores_apart(self):
        pos = Tensor(np.array([[0.0]]), requires_grad=True)
        neg = Tensor(np.array([[0.0]]), requires_grad=True)
        margin_ranking_loss(pos, neg, margin=10.0).backward()
        assert pos.grad[0, 0] < 0  # increasing pos decreases loss
        assert neg.grad[0, 0] > 0


class TestBCE:
    def test_perfect_predictions_near_zero(self):
        logits = Tensor(np.array([50.0, -50.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert float(loss.data) < 1e-6

    def test_chance_is_log2(self):
        logits = Tensor(np.array([0.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0]))
        assert float(loss.data) == pytest.approx(np.log(2.0), rel=1e-6)

    def test_gradient_direction(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        binary_cross_entropy_with_logits(logits, np.array([1.0])).backward()
        assert logits.grad[0] < 0  # push logit up toward the positive label


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(5.0)

    def test_zero_at_target(self):
        pred = Tensor(np.array([2.0]))
        assert float(mse_loss(pred, np.array([2.0])).data) == 0.0
