"""Benchmark suite construction tests (Table I analogues)."""

import pytest

from repro.kg import (
    FAMILIES,
    FULL_BENCHMARK_SPECS,
    build_ext_benchmark,
    build_full_benchmark,
    build_partial_benchmark,
    family_ontology,
)


class TestFamilies:
    def test_three_families(self):
        assert set(FAMILIES) == {"WN18RR", "FB15k-237", "NELL-995"}

    def test_family_ontology_cached(self):
        assert family_ontology("WN18RR") is family_ontology("WN18RR")

    def test_ontology_covers_max_relations_plus_extensions(self):
        config = FAMILIES["NELL-995"]
        ontology = family_ontology("NELL-995")
        assert ontology.num_relations == max(config.relations) + config.extension_relations


class TestPartialBenchmark:
    def test_train_relations_are_version_prefix(self, tiny_partial_benchmark):
        config = FAMILIES["NELL-995"]
        assert tiny_partial_benchmark.seen_relations <= set(range(config.relations[0]))

    def test_test_relations_subset_of_train_relations(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        test_rels = b.test_graph.triples.relation_ids() | b.test_triples.relation_ids()
        config = FAMILIES["NELL-995"]
        assert test_rels <= set(range(config.relations[0]))
        assert b.unseen_test_relations() <= test_rels

    def test_targets_not_in_context(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        context = set(b.test_graph.triples)
        assert all(t not in context for t in b.test_triples)

    def test_train_valid_disjoint(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        assert not (set(b.train_triples) & set(b.valid_triples))

    def test_train_targets_inside_train_graph(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        graph_triples = set(b.train_graph.triples)
        assert all(t in graph_triples for t in b.train_triples)

    def test_statistics_shape(self, tiny_partial_benchmark):
        stats = tiny_partial_benchmark.statistics()
        assert set(stats) == {"train", "test"}
        assert stats["train"]["triples"] > 0

    def test_bad_version_raises(self):
        with pytest.raises(ValueError):
            build_partial_benchmark("WN18RR", 5)

    def test_deterministic(self):
        a = build_partial_benchmark("WN18RR", 1, scale=0.05, seed=3)
        b = build_partial_benchmark("WN18RR", 1, scale=0.05, seed=3)
        assert a.train_triples == b.train_triples
        assert a.test_triples == b.test_triples


class TestFullBenchmark:
    def test_unseen_relations_exist(self, tiny_full_benchmark):
        assert len(tiny_full_benchmark.unseen_relations()) > 0

    def test_fully_graph_has_no_seen_relations(self, tiny_full_benchmark):
        b = tiny_full_benchmark
        rels = (
            b.fully_test_graph.triples.relation_ids()
            | b.fully_test_triples.relation_ids()
        )
        assert not (rels & b.seen_relations)

    def test_semi_graph_mixes_seen_and_unseen(self, tiny_full_benchmark):
        b = tiny_full_benchmark
        rels = b.semi_test_graph.triples.relation_ids()
        assert rels & b.seen_relations
        assert rels - b.seen_relations

    def test_as_partial_views(self, tiny_full_benchmark):
        semi = tiny_full_benchmark.as_partial("semi")
        fully = tiny_full_benchmark.as_partial("fully")
        assert semi.test_triples == tiny_full_benchmark.semi_test_triples
        assert fully.test_triples == tiny_full_benchmark.fully_test_triples
        with pytest.raises(ValueError):
            tiny_full_benchmark.as_partial("bogus")

    def test_requires_extra_relations(self):
        with pytest.raises(ValueError):
            build_full_benchmark("NELL-995", 3, 1)

    def test_paper_spec_list_buildable(self):
        # All four Table Ib re-combinations must construct.
        for family, i, j in FULL_BENCHMARK_SPECS:
            b = build_full_benchmark(family, i, j, scale=0.04, seed=0)
            assert len(b.semi_test_triples) > 0
            assert len(b.fully_test_triples) > 0


class TestExtBenchmark:
    def test_target_categories_present(self, tiny_ext_benchmark):
        assert set(tiny_ext_benchmark.targets) == {"u_ent", "u_rel", "u_both"}

    def test_u_ent_semantics(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        for head, rel, tail in b.targets["u_ent"]:
            assert head not in b.seen_entities and tail not in b.seen_entities
            assert rel in b.seen_relations

    def test_u_rel_semantics(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        for head, rel, tail in b.targets["u_rel"]:
            assert head in b.seen_entities and tail in b.seen_entities
            assert rel not in b.seen_relations

    def test_u_both_semantics(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        for head, rel, tail in b.targets["u_both"]:
            assert rel not in b.seen_relations
            assert head not in b.seen_entities or tail not in b.seen_entities

    def test_train_graph_pure(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        for head, rel, tail in b.train_graph.triples:
            assert head in b.seen_entities and tail in b.seen_entities
            assert rel in b.seen_relations

    def test_seen_sets_match_train_graph(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        assert b.seen_relations == frozenset(b.train_graph.triples.relation_ids())
        assert b.seen_entities == frozenset(b.train_graph.triples.entities())

    def test_targets_excluded_from_test_context(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        context = set(b.test_graph.triples)
        for targets in b.targets.values():
            assert all(t not in context for t in targets)
