"""Tests for the online inference serving subsystem (`repro.serve`).

Covers the score cache, model registry, inference session, micro-batching
scheduler (including the coalescing guarantee: N concurrent requests reach
the model as ONE batched scoring call), and an end-to-end HTTP run against
a trained-from-scratch RMPI checkpoint whose top-k ranking must match the
offline evaluation protocol's scoring path.
"""

from __future__ import annotations

import threading
import urllib.request

import numpy as np
import pytest

from engine_tolerances import score_tolerance

from repro.core import RMPI, RMPIConfig
from repro.eval.protocol import candidate_entity_pool, known_fact_set
from repro.eval.metrics import rank_of_first
from repro.kg import KnowledgeGraph, TripleSet, ranking_candidates
from repro.obs import MetricsRegistry
from repro.obs import set_registry as set_obs_registry
from repro.parallel.pool import fork_available
from repro.serve import (
    InferenceSession,
    MicroBatchScheduler,
    ModelRegistry,
    ScoreCache,
    ServingApp,
    ServingClient,
    ServingConfig,
    ServingServer,
)
from repro.train import (
    CheckpointMismatchError,
    TrainingConfig,
    save_checkpoint,
    train_model,
)


def _rmpi(graph, seed=0, **config):
    return RMPI(
        graph.num_relations,
        np.random.default_rng(seed),
        RMPIConfig(embed_dim=16, dropout=0.0, **config),
    )


def _registry(graph, **kwargs):
    registry = ModelRegistry()
    registry.register("rmpi", _rmpi(graph), **kwargs)
    return registry


class TestScoreCache:
    def test_put_get_and_counters(self):
        cache = ScoreCache(maxsize=4)
        key = ("m@1", "fp", (0, 1, 2))
        assert cache.get(key) is None
        cache.put(key, 0.5)
        assert cache.get(key) == 0.5
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = ScoreCache(maxsize=2)
        keys = [("m", "fp", (i, 0, 0)) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, float(i))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2]) == 2.0
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = ScoreCache(maxsize=2)
        a, b, c = [("m", "fp", (i, 0, 0)) for i in range(3)]
        cache.put(a, 1.0)
        cache.put(b, 2.0)
        cache.get(a)  # a is now most recent
        cache.put(c, 3.0)  # evicts b
        assert cache.get(a) == 1.0 and cache.get(b) is None

    def test_invalidate_graph(self):
        cache = ScoreCache(maxsize=8)
        cache.put(("m", "old", (0, 0, 0)), 1.0)
        cache.put(("m", "new", (0, 0, 0)), 2.0)
        assert cache.invalidate_graph("old") == 1
        assert cache.get(("m", "new", (0, 0, 0))) == 2.0
        assert len(cache) == 1

    def test_size_zero_disables(self):
        cache = ScoreCache(maxsize=0)
        cache.put(("m", "fp", (0, 0, 0)), 1.0)
        assert cache.get(("m", "fp", (0, 0, 0))) is None


class TestScoreCacheEdgeCases:
    def test_capacity_zero_never_stores_but_still_counts_misses(self):
        cache = ScoreCache(maxsize=0)
        keys = [("m", "fp", (i, 0, 0)) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, float(i))
            assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 3
        # Invalidation and clear on a disabled cache are harmless no-ops.
        assert cache.invalidate_graph("fp") == 0
        cache.clear()
        assert cache.stats()["entries"] == 0

    def test_capacity_one_keeps_exactly_the_latest_entry(self):
        cache = ScoreCache(maxsize=1)
        a, b = ("m", "fp", (0, 0, 0)), ("m", "fp", (1, 0, 0))
        cache.put(a, 1.0)
        assert cache.get(a) == 1.0
        cache.put(b, 2.0)  # displaces a: capacity one holds one entry
        assert len(cache) == 1
        assert cache.get(a) is None
        assert cache.get(b) == 2.0
        # Re-putting the resident key must not evict it (no self-eviction).
        cache.put(b, 3.0)
        assert cache.get(b) == 3.0 and len(cache) == 1

    def test_eviction_order_under_repeated_hits(self):
        cache = ScoreCache(maxsize=3)
        a, b, c, d = [("m", "fp", (i, 0, 0)) for i in range(4)]
        cache.put(a, 1.0)
        cache.put(b, 2.0)
        cache.put(c, 3.0)
        # Hit a twice and c once: recency order (oldest first) is b, c, a.
        cache.get(a)
        cache.get(a)
        cache.get(c)
        cache.put(d, 4.0)  # evicts b, the least recently used
        assert cache.get(b) is None
        assert cache.get(a) == 1.0
        assert cache.get(c) == 3.0
        assert cache.get(d) == 4.0
        # A put to an existing key also refreshes recency: a is oldest now
        # unless re-put; re-put c, then overflow must evict a.
        cache.get(a)  # order: c, d, a
        cache.put(c, 5.0)  # order: d, a, c
        cache.put(("m", "fp", (9, 0, 0)), 9.0)  # evicts d
        assert cache.get(d) is None
        assert cache.get(c) == 5.0

    def test_fingerprint_change_mid_session_invalidates(self, family_graph):
        """Scores cached against one graph must never be served for
        another: the fingerprint in the key plus ``set_graph``'s eager
        invalidation together guarantee it mid-session."""
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        triples = [(0, 0, 1), (2, 1, 0)]
        before = session.score(triples)
        assert len(session.cache) == len(triples)
        old_fingerprint = family_graph.fingerprint()

        # Mid-session graph swap: same triples, different graph content.
        mutated = KnowledgeGraph(
            TripleSet(list(family_graph.triples) + [(1, 2, 3)]),
            num_entities=family_graph.num_entities,
            num_relations=family_graph.num_relations,
        )
        assert mutated.fingerprint() != old_fingerprint
        session.set_graph(mutated)
        assert len(session.cache) == 0  # eager flush

        model = registry.get("rmpi").model
        calls = model.scoring_stats.batch_calls
        after = session.score(triples)
        assert model.scoring_stats.batch_calls == calls + 1  # recomputed
        # New entries are keyed by the new fingerprint only; the old
        # graph's keys cannot be hit even if probed directly.
        entry = registry.get("rmpi")
        for triple in triples:
            assert session.cache.get(
                (entry.key, old_fingerprint, triple)
            ) is None
        # Swapping back restores neither scores nor cache entries silently:
        # the session re-scores against the restored graph from scratch.
        session.set_graph(family_graph)
        calls = model.scoring_stats.batch_calls
        restored = session.score(triples)
        assert model.scoring_stats.batch_calls == calls + 1
        assert restored == pytest.approx(before)
        assert after is not None  # both graphs produced full score lists


class TestModelRegistry:
    def test_versions_auto_increment(self, family_graph):
        registry = ModelRegistry()
        first = registry.register("rmpi", _rmpi(family_graph))
        second = registry.register("rmpi", _rmpi(family_graph, seed=1))
        assert (first.version, second.version) == (1, 2)
        assert registry.get("rmpi").version == 2  # latest by default
        assert registry.get("rmpi", 1) is first

    def test_resolve_specs(self, family_graph):
        registry = _registry(family_graph)
        registry.register("rmpi", _rmpi(family_graph, seed=1))
        assert registry.resolve("rmpi@1").version == 1
        assert registry.resolve("rmpi").version == 2
        with pytest.raises(KeyError):
            registry.resolve("rmpi@9")
        with pytest.raises(KeyError):
            registry.resolve("nope")

    def test_resolve_default_requires_single_model(self, family_graph):
        registry = _registry(family_graph)
        assert registry.resolve(None).name == "rmpi"
        registry.register("other", _rmpi(family_graph, seed=2))
        with pytest.raises(KeyError):
            registry.resolve(None)

    def test_duplicate_version_rejected(self, family_graph):
        registry = _registry(family_graph)
        with pytest.raises(ValueError):
            registry.register("rmpi", _rmpi(family_graph), version=1)

    def test_register_checkpoint_roundtrip(self, tmp_path, family_graph):
        model = _rmpi(family_graph)
        path = save_checkpoint(model, str(tmp_path / "ck"), extra_meta={"note": "x"})
        registry = ModelRegistry()
        entry = registry.register_checkpoint(
            "served", _rmpi(family_graph, seed=9), path
        )
        assert entry.meta["model_class"] == "RMPI"
        assert entry.meta["note"] == "x"
        assert entry.meta["checkpoint"] == path
        a = model.score_triples(family_graph, [(0, 0, 1)])
        b = entry.model.score_triples(family_graph, [(0, 0, 1)])
        assert a == pytest.approx(b)

    def test_register_checkpoint_validates_architecture(self, tmp_path, family_graph):
        path = save_checkpoint(_rmpi(family_graph), str(tmp_path / "ck"))
        registry = ModelRegistry()
        with pytest.raises(CheckpointMismatchError):
            registry.register_checkpoint(
                "served", _rmpi(family_graph, use_disclosing=True), path
            )
        assert len(registry) == 0  # failed load never registers

    def test_describe_is_json_ready(self, family_graph):
        import json

        registry = _registry(family_graph, meta={"benchmark": "family"})
        (summary,) = registry.describe()
        assert summary["key"] == "rmpi@1"
        assert summary["benchmark"] == "family"
        json.dumps(summary)  # must not raise


class TestInferenceSession:
    def test_score_matches_model_path(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph, use_fused=False)
        triples = [(0, 0, 1), (2, 1, 0), (3, 4, 1)]
        expected = registry.get("rmpi").model.score_triples(family_graph, triples)
        assert session.score(triples) == pytest.approx(expected)

    def test_fused_matches_per_sample(self, family_graph):
        registry = _registry(family_graph)
        plain = InferenceSession(registry, family_graph, use_fused=False, cache_size=0)
        fused = InferenceSession(registry, family_graph, use_fused=True, cache_size=0)
        triples = [(0, 0, 1), (2, 1, 0), (3, 4, 1), (0, 3, 4)]
        assert fused.score(triples) == pytest.approx(
            plain.score(triples), abs=score_tolerance()["atol"]
        )

    def test_cache_short_circuits_model(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        model = registry.get("rmpi").model
        triples = [(0, 0, 1), (2, 1, 0)]
        first = session.score(triples)
        calls = model.scoring_stats.batch_calls
        second = session.score(triples)
        assert model.scoring_stats.batch_calls == calls  # pure cache hits
        assert second == pytest.approx(first)
        assert session.cache.hits >= 2

    def test_duplicate_triples_scored_once(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scores = session.score([(0, 0, 1), (0, 0, 1)])
        assert scores[0] == scores[1]
        model = registry.get("rmpi").model
        assert model.scoring_stats.triples_scored == 1

    def test_set_graph_invalidates_cache(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        session.score([(0, 0, 1)])
        assert len(session.cache) == 1
        other = KnowledgeGraph(
            TripleSet([(0, 0, 1), (1, 1, 2)]),
            num_entities=family_graph.num_entities,
            num_relations=family_graph.num_relations,
        )
        session.set_graph(other)
        assert len(session.cache) == 0
        assert other.fingerprint() != family_graph.fingerprint()
        model = registry.get("rmpi").model
        calls = model.scoring_stats.batch_calls
        session.score([(0, 0, 1)])
        assert model.scoring_stats.batch_calls == calls + 1  # re-scored

    def test_top_k_tails_excludes_known_facts(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        # (0, 3, ?): 3 and 4 are known father_of tails and must not appear.
        predictions = session.top_k_tails(0, 3, k=family_graph.num_entities)
        predicted = {entity for entity, _ in predictions}
        assert predicted.isdisjoint({3, 4})
        scores = [score for _, score in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_heads_candidate_override(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        predictions = session.top_k_heads(
            1, 0, k=2, candidates=[2, 3], exclude_known=False
        )
        assert {entity for entity, _ in predictions} <= {2, 3}


class TestMicroBatchScheduler:
    def test_coalesces_concurrent_requests_into_one_model_call(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_batch_size=64, max_wait_ms=50)
        triples = [(0, 0, 1), (2, 1, 0), (1, 2, 2), (3, 4, 1), (0, 3, 3), (1, 5, 5)]
        model = registry.get("rmpi").model
        before = model.scoring_stats.snapshot()
        # Queue 6 requests before the worker runs: deterministic coalescing.
        futures = [scheduler.submit([triple]) for triple in triples]
        with scheduler:
            scores = [future.result(timeout=30) for future in futures]
        after = model.scoring_stats.snapshot()
        # ≥ 4 concurrent requests reached the model as ONE batched call.
        assert after["batch_calls"] - before["batch_calls"] == 1
        assert after["triples_scored"] - before["triples_scored"] == len(triples)
        assert scheduler.stats.batches == 1
        assert scheduler.stats.largest_batch_requests == len(triples)
        expected = model.score_triples(family_graph, triples)
        flat = np.concatenate(scores)
        assert flat == pytest.approx(expected, abs=score_tolerance()["atol"])

    def test_mixed_model_batch_dispatches_per_model(self, family_graph):
        registry = _registry(family_graph)
        registry.register("other", _rmpi(family_graph, seed=3))
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_batch_size=64, max_wait_ms=50)
        futures = [
            scheduler.submit([(0, 0, 1)], "rmpi"),
            scheduler.submit([(2, 1, 0)], "rmpi"),
            scheduler.submit([(0, 0, 1)], "other"),
        ]
        with scheduler:
            for future in futures:
                future.result(timeout=30)
        assert scheduler.stats.batches == 1
        assert scheduler.stats.dispatches == 2  # one call per distinct model

    def test_equivalent_model_specs_coalesce_into_one_dispatch(self, family_graph):
        """'rmpi', 'rmpi@1' and the default (None) all resolve to the same
        registry entry and must share one batched model call."""
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_batch_size=64, max_wait_ms=50)
        model = registry.get("rmpi").model
        before = model.scoring_stats.snapshot()
        futures = [
            scheduler.submit([(0, 0, 1)], "rmpi"),
            scheduler.submit([(2, 1, 0)], None),
            scheduler.submit([(1, 2, 2)], "rmpi@1"),
        ]
        with scheduler:
            for future in futures:
                future.result(timeout=30)
        assert scheduler.stats.batches == 1
        assert scheduler.stats.dispatches == 1
        assert model.scoring_stats.snapshot()["batch_calls"] - before["batch_calls"] == 1

    def test_unknown_model_spec_fails_only_that_request(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_batch_size=64, max_wait_ms=50)
        good = scheduler.submit([(0, 0, 1)], "rmpi")
        bad = scheduler.submit([(2, 1, 0)], "nope")
        with scheduler:
            assert np.isfinite(good.result(timeout=30)).all()
            with pytest.raises(KeyError):
                bad.result(timeout=30)
        # Stats only count what a model was actually asked to score.
        assert scheduler.stats.requests == 2
        assert scheduler.stats.triples == 1
        assert scheduler.stats.largest_batch_triples == 1

    def test_close_rejects_new_submissions_until_restarted(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_wait_ms=0)
        scheduler.start()
        scheduler.close()
        with pytest.raises(RuntimeError, match="stopped"):
            scheduler.submit([(0, 0, 1)])
        scheduler.start()  # re-opens
        try:
            assert np.isfinite(scheduler.submit([(0, 0, 1)]).result(timeout=30)).all()
        finally:
            scheduler.close()

    def test_errors_propagate_through_future(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        with MicroBatchScheduler(session, max_wait_ms=0) as scheduler:
            bad = scheduler.submit([(999, 0, 1)])  # entity out of range
            with pytest.raises(ValueError):
                bad.result(timeout=30)
            good = scheduler.submit([(0, 0, 1)])
            assert np.isfinite(good.result(timeout=30)).all()

    def test_empty_request_resolves_immediately(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session)
        assert scheduler.submit([]).result(timeout=1).size == 0

    def test_stop_drains_pending_requests(self, family_graph):
        registry = _registry(family_graph)
        session = InferenceSession(registry, family_graph)
        scheduler = MicroBatchScheduler(session, max_wait_ms=0)
        future = scheduler.submit([(0, 0, 1)])
        scheduler.start()
        scheduler.stop()
        assert np.isfinite(future.result(timeout=30)).all()
        assert not scheduler.is_running

    def test_restart_waits_for_slow_draining_worker(self):
        """A timed-out stop() must not let start() spawn a second worker
        while the old one is still dispatching (single-worker invariant)."""
        import time

        class SlowSession:
            def __init__(self):
                self.release = threading.Event()
                self.active = 0
                self.max_active = 0
                self.graph = None

            def resolve_model(self, spec=None):
                class Entry:
                    key = "slow@1"

                return Entry()

            def score(self, triples, model=None):
                self.active += 1
                self.max_active = max(self.max_active, self.active)
                try:
                    assert self.release.wait(timeout=30)
                    return np.zeros(len(triples))
                finally:
                    self.active -= 1

        session = SlowSession()
        scheduler = MicroBatchScheduler(session, max_wait_ms=0)
        first = scheduler.submit([(0, 0, 1)])
        scheduler.start()
        while session.max_active == 0:  # worker is now inside score()
            time.sleep(0.005)
        scheduler.stop(timeout=0.05)  # times out: worker still draining
        second = scheduler.submit([(0, 0, 2)])
        restarted = threading.Thread(target=scheduler.start)
        restarted.start()
        time.sleep(0.1)
        assert restarted.is_alive()  # start() is waiting, not double-running
        session.release.set()
        restarted.join(timeout=30)
        assert not restarted.is_alive()
        first.result(timeout=30)
        second.result(timeout=30)
        assert session.max_active == 1  # never two workers in score() at once
        scheduler.stop()

    def test_start_during_stop_join_window_spawns_no_second_worker(self):
        """start() issued while stop() is still blocked in its join must
        wait for the retiring worker instead of double-running."""
        import time

        class SlowSession:
            def __init__(self):
                self.release = threading.Event()
                self.active = 0
                self.max_active = 0
                self.graph = None

            def resolve_model(self, spec=None):
                class Entry:
                    key = "slow@1"

                return Entry()

            def score(self, triples, model=None):
                self.active += 1
                self.max_active = max(self.max_active, self.active)
                try:
                    assert self.release.wait(timeout=30)
                    return np.zeros(len(triples))
                finally:
                    self.active -= 1

        session = SlowSession()
        scheduler = MicroBatchScheduler(session, max_wait_ms=0)
        first = scheduler.submit([(0, 0, 1)])
        scheduler.start()
        while session.max_active == 0:
            time.sleep(0.005)
        stopper = threading.Thread(target=scheduler.stop, kwargs={"timeout": 30})
        stopper.start()
        time.sleep(0.05)  # stop() is now blocked inside worker.join()
        second = scheduler.submit([(0, 0, 2)])
        restarted = threading.Thread(target=scheduler.start)
        restarted.start()
        time.sleep(0.1)
        assert restarted.is_alive()  # waiting on the retiring worker
        session.release.set()
        stopper.join(timeout=30)
        restarted.join(timeout=30)
        first.result(timeout=30)
        second.result(timeout=30)
        assert session.max_active == 1
        scheduler.stop()


class TestMetricsEndpoint:
    """GET /metrics: the registry snapshot must agree with the ScoringStats
    shim and the score-cache counters, serial and under scoring workers."""

    @pytest.fixture
    def obs_registry(self):
        fresh = MetricsRegistry()
        previous = set_obs_registry(fresh)
        try:
            yield fresh
        finally:
            set_obs_registry(previous)

    def _score_and_scrape(self, app, triples):
        status, _ = app.handle("POST", "/score", {"triples": triples})
        assert status == 200
        status, snap = app.handle("GET", "/metrics")
        assert status == 200
        return snap

    def test_metrics_match_shim_and_cache_counters(self, family_graph, obs_registry):
        registry = _registry(family_graph)
        app = ServingApp(
            registry,
            family_graph,
            ServingConfig(default_model="rmpi", max_wait_ms=1.0),
        ).start()
        try:
            triples = [[0, 0, 1], [2, 1, 0], [1, 2, 2]]
            snap = self._score_and_scrape(app, triples)
            stats = registry.get("rmpi").model.scoring_stats
            ns = stats.namespace
            assert snap["counters"][f"{ns}.batch_calls"] == stats.batch_calls >= 1
            assert (
                snap["counters"][f"{ns}.triples_scored"]
                == stats.triples_scored
                == len(triples)
            )
            cache = app.session.cache
            assert snap["counters"]["serve.cache.misses"] == cache.misses == 3
            assert snap["counters"].get("serve.cache.hits", 0) == cache.hits == 0
        finally:
            app.close()

    def test_scrape_reports_every_request_except_itself(
        self, family_graph, obs_registry
    ):
        registry = _registry(family_graph)
        app = ServingApp(
            registry,
            family_graph,
            ServingConfig(default_model="rmpi", max_wait_ms=1.0),
        ).start()
        try:
            app.handle("GET", "/health")
            app.handle("POST", "/score", {"triples": [[0, 0, 1]]})
            _, snap = app.handle("GET", "/metrics")
            assert snap["counters"]["serve.http.requests"] == 2
            assert snap["counters"]["serve.http.responses.2xx"] == 2
            assert snap["histograms"]["span.serve.http.request.ms"]["count"] == 2
            # The scrape itself lands in the registry after its body is built.
            _, again = app.handle("GET", "/metrics")
            assert again["counters"]["serve.http.requests"] == 3
        finally:
            app.close()

    def test_cache_hits_surface_on_repeat_scoring(self, family_graph, obs_registry):
        registry = _registry(family_graph)
        app = ServingApp(
            registry,
            family_graph,
            ServingConfig(default_model="rmpi", max_wait_ms=1.0),
        ).start()
        try:
            triples = [[0, 0, 1], [2, 1, 0]]
            self._score_and_scrape(app, triples)
            snap = self._score_and_scrape(app, triples)
            cache = app.session.cache
            assert snap["counters"]["serve.cache.hits"] == cache.hits == 2
            assert snap["counters"]["serve.cache.misses"] == cache.misses == 2
        finally:
            app.close()

    @pytest.mark.parallel
    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    def test_metrics_match_shim_under_scoring_workers(
        self, family_graph, obs_registry, max_workers
    ):
        if max_workers < 2:
            pytest.skip("--workers caps the sweep below 2")
        registry = _registry(family_graph)
        app = ServingApp(
            registry,
            family_graph,
            ServingConfig(default_model="rmpi", max_wait_ms=1.0, workers=2),
        ).start()
        try:
            assert app.session.scoring_pool is not None
            # >= workers triples so the session shards across the pool.
            triples = [[0, 0, 1], [2, 1, 0], [1, 2, 2], [3, 4, 1]]
            snap = self._score_and_scrape(app, triples)
            stats = registry.get("rmpi").model.scoring_stats
            ns = stats.namespace
            # Models are constructed before the fork, so the per-rank shim
            # deltas merge back under the parent's namespace.
            assert (
                snap["counters"][f"{ns}.triples_scored"]
                == stats.triples_scored
                == len(triples)
            )
            assert snap["counters"][f"{ns}.batch_calls"] == stats.batch_calls == 2
            assert snap["counters"]["serve.cache.misses"] == len(triples)
        finally:
            app.close()


# ----------------------------------------------------------------------
# End-to-end: HTTP server over a trained-from-scratch RMPI checkpoint.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def trained_checkpoint(tmp_path_factory, tiny_partial_benchmark):
    """Train a small RMPI from scratch and persist it as a checkpoint."""
    bench = tiny_partial_benchmark
    model = RMPI(
        bench.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16)
    )
    train_model(
        model,
        bench.train_graph,
        bench.train_triples,
        config=TrainingConfig(epochs=2, seed=0, max_triples_per_epoch=30),
    )
    path = save_checkpoint(
        model,
        str(tmp_path_factory.mktemp("serve") / "rmpi-base"),
        extra_meta={"benchmark": bench.name},
    )
    return path, bench


@pytest.fixture(scope="module")
def served(trained_checkpoint):
    """A live HTTP server hosting the trained checkpoint on the test graph."""
    path, bench = trained_checkpoint
    registry = ModelRegistry()
    registry.register_checkpoint(
        "rmpi-base",
        RMPI(bench.num_relations, np.random.default_rng(7), RMPIConfig(embed_dim=16)),
        path,
    )
    app = ServingApp(
        registry,
        bench.test_graph,
        # use_fused=False: byte-identical to the offline eval scoring path,
        # so ranking parity below is exact (fused equivalence is covered by
        # TestInferenceSession.test_fused_matches_per_sample).
        ServingConfig(
            default_model="rmpi-base",
            max_batch_size=8,
            max_wait_ms=300.0,
            use_fused=False,
        ),
    )
    with ServingServer(app) as server:
        yield server, ServingClient(server.url), registry, bench


@pytest.mark.slow
class TestHTTPServing:
    """Trained-from-scratch serving e2e: tier-2 (``-m slow``), run by the
    CI parallel-and-slow job; tier-1 covers the same components through the
    unit/integration classes above."""

    def test_health_and_models(self, served):
        _, client, _, bench = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["graph"]["triples"] == len(bench.test_graph)
        (summary,) = client.models()
        assert summary["key"] == "rmpi-base@1"
        assert summary["model_class"] == "RMPI"
        assert summary["benchmark"] == bench.name

    def test_score_endpoint(self, served):
        _, client, registry, bench = served
        triples = list(bench.test_triples)[:3]
        scores = client.score(triples)
        expected = registry.get("rmpi-base").model.score_triples(
            bench.test_graph, triples
        )
        assert scores == pytest.approx(expected)

    def test_topk_matches_offline_eval_ranking(self, served):
        """The acceptance check: a served top-k tail query ranks candidates
        exactly as ``evaluate_entity_prediction``'s scoring path does."""
        server, client, registry, bench = served
        graph, targets = bench.test_graph, bench.test_triples
        truth = next(iter(targets))
        pool = candidate_entity_pool(graph, targets)
        known = known_fact_set(graph, targets)
        candidates = ranking_candidates(
            truth,
            num_entities=graph.num_entities,
            rng=np.random.default_rng(42),
            num_negatives=20,
            known=known,
            candidate_entities=pool,
            corrupt_head=False,
        )
        # The offline protocol's scoring path, verbatim.
        model = registry.get("rmpi-base").model
        eval_scores = model.score_triples(graph, candidates)
        eval_order = [
            candidates[i][2] for i in np.argsort(-eval_scores, kind="stable")
        ]
        status, body = client.request(
            "POST",
            "/topk",
            {
                "head": int(truth[0]),
                "relation": int(truth[1]),
                "k": len(candidates),
                "candidates": [int(t[2]) for t in candidates],
                "exclude_known": False,
            },
        )
        assert status == 200
        served_order = [row["entity"] for row in body["predictions"]]
        assert served_order == eval_order
        # The truth's served position agrees with the protocol's rank metric
        # (exact when scores are untied, which a trained model gives us).
        if len(set(eval_scores.tolist())) == len(candidates):
            assert served_order.index(truth[2]) + 1 == rank_of_first(eval_scores)

    def test_topk_heads_endpoint(self, served):
        _, client, _, bench = served
        truth = next(iter(bench.test_triples))
        predictions = client.top_k_heads(int(truth[2]), int(truth[1]), k=5)
        assert len(predictions) <= 5
        scores = [row["score"] for row in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_concurrent_http_requests_coalesce(self, served):
        """8 concurrent HTTP requests reach the model as ONE batched call."""
        import time

        server, client, registry, bench = served
        scheduler = server.app.scheduler
        model = registry.get("rmpi-base").model
        requests = [(int(h), int(r), int(t)) for h, r, t in list(bench.test_triples)[:8]]
        server.app.session.cache.clear()
        # Hold the worker so all 8 in-flight HTTP requests pile up in the
        # queue (deterministic coalescing regardless of thread scheduling).
        scheduler.stop()
        try:
            threads = [
                threading.Thread(target=client.score, args=([triple],))
                for triple in requests
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 30
            while scheduler.queue_depth() < len(requests):
                assert time.monotonic() < deadline, "HTTP requests never enqueued"
                time.sleep(0.01)
            before = model.scoring_stats.batch_calls
            scheduler.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            scheduler.start()  # leave the served fixture live for later tests
        stats = client.stats()["scheduler"]
        assert model.scoring_stats.batch_calls - before == 1
        assert stats["largest_batch_requests"] >= len(requests)

    def test_bad_payload_is_400(self, served):
        _, client, _, _ = served
        status, body = client.request("POST", "/score", {"triples": []})
        assert status == 400 and "error" in body
        status, body = client.request(
            "POST", "/topk", {"relation": 0, "head": 1, "tail": 2}
        )
        assert status == 400 and "error" in body

    def test_out_of_range_ids_are_400_not_scored(self, served):
        """Negative relation ids must not wrap around into the embedding
        table and serve a confident score for a nonexistent relation."""
        _, client, _, bench = served
        num_relations = bench.test_graph.num_relations
        for relation in (-5, num_relations):
            status, body = client.request(
                "POST", "/score", {"triples": [[0, relation, 1]]}
            )
            assert status == 400 and "relation id" in body["error"]
            status, body = client.request(
                "POST", "/topk", {"head": 0, "relation": relation}
            )
            assert status == 400 and "relation id" in body["error"]
        status, body = client.request(
            "POST", "/score", {"triples": [[-1, 0, 1]]}
        )
        assert status == 400 and "entity id" in body["error"]
        status, body = client.request(
            "POST", "/topk", {"head": -1, "relation": 0}
        )
        assert status == 400 and "entity id" in body["error"]
        status, body = client.request(
            "POST", "/topk", {"head": 0, "relation": 0, "candidates": [0, -7]}
        )
        assert status == 400 and "entity id -7" in body["error"]
        status, body = client.request(
            "POST", "/topk", {"head": 0, "relation": 0, "k": "lots"}
        )
        assert status == 400 and "'k'" in body["error"]

    @pytest.mark.parametrize(
        "error", [RuntimeError("model exploded"), ValueError("bad shape (7,)")]
    )
    def test_unexpected_error_is_500_not_dropped_connection(self, served, error):
        """Post-validation faults are server errors (500), never silently
        dropped connections — and never misreported as client 400s, even
        for ValueError, since client input is fully validated up front."""
        server, client, _, bench = served
        original = server.app.scheduler.score_sync

        def boom(*args, **kwargs):
            raise error

        server.app.scheduler.score_sync = boom
        try:
            triple = next(iter(bench.test_triples))
            status, body = client.request(
                "POST", "/score", {"triples": [list(triple)]}
            )
        finally:
            server.app.scheduler.score_sync = original
        assert status == 500
        assert str(error) in body["error"]

    def test_unknown_model_is_404(self, served):
        _, client, _, bench = served
        triple = next(iter(bench.test_triples))
        status, body = client.request(
            "POST", "/score", {"triples": [list(triple)], "model": "nope"}
        )
        assert status == 404 and "nope" in body["error"]

    def test_unknown_route_is_404(self, served):
        _, client, _, _ = served
        status, body = client.request("GET", "/bogus")
        assert status == 404 and "error" in body

    def test_query_string_is_ignored_for_routing(self, served):
        _, client, _, _ = served
        status, body = client.request("GET", "/health?verbose=1")
        assert status == 200 and body["status"] == "ok"

    def test_metrics_endpoint_round_trip(self, served):
        server, client, _, bench = served
        triples = [list(t) for t in list(bench.test_triples)[:2]]
        assert client.request("POST", "/score", {"triples": triples})[0] == 200
        status, snap = client.request("GET", "/metrics")
        assert status == 200
        # The scrape excludes itself, so only the POST is guaranteed.
        assert snap["counters"]["serve.http.requests"] >= 1
        assert "span.serve.http.request.ms" in snap["histograms"]
        assert snap["counters"]["serve.scheduler.requests"] >= 1
        # Same data as flat text exposition for curl/grep consumers.
        with urllib.request.urlopen(server.url + "/metrics?format=text") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        assert "serve_http_requests_total" in text
        assert 'span_serve_http_request_ms_bucket{le="+Inf"}' in text
