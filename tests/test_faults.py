"""Chaos suite for :mod:`repro.faults` and the self-healing worker pool.

The plan layer itself (spec matching, firing budgets, JSON round-trips,
activation precedence) runs everywhere; the pool scenarios fork real
workers and ``kill -9`` them mid-run, asserting the supervision story:
respawn at the same rank and seed, requeue the lost shard, and produce
results **bitwise identical** to a serial run — faults change latency,
never answers.  Everything here is marked ``chaos``; the pool cases are
additionally ``parallel`` (CI runs them in both the chaos step and the
parallel-and-slow job).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.eval.protocol import evaluate_entity_prediction
from repro.faults import (
    ENV_PLAN_VAR,
    NO_FAULTS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    deactivate,
    inject,
    plan_from_env,
)
from repro.kg import TripleSet
from repro.obs import MetricsRegistry, set_registry
from repro.parallel import (
    ParallelEvaluator,
    ShardedPreparer,
    WorkerError,
    WorkerPool,
)
from repro.parallel.pool import fork_available, register_op
from repro.parallel.trainer import DataParallelTrainer
from repro.train import ParallelConfig, TrainingConfig

from test_parallel_equivalence import (
    TRIPLES,
    assert_samples_equal,
    capped,
    make_model,
    small_graph,
)

pytestmark = pytest.mark.chaos

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@register_op("chaos.scale")
def _chaos_scale(state, payload):
    factor = state["context"].get("factor", 2)
    return [value * factor for value in payload]


@pytest.fixture(autouse=True)
def _pristine_faults(monkeypatch):
    """No plan active and no env plan cached, before and after every test."""
    monkeypatch.delenv(ENV_PLAN_VAR, raising=False)
    deactivate()
    yield
    deactivate()


@pytest.fixture
def obs_registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def kill_once(op, rank):
    return FaultPlan([FaultSpec(op=op, kind="kill", rank=rank)])


# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(op="prepare", kind="explode")

    def test_rejects_zero_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(op="prepare", kind="kill", times=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            FaultSpec(op="prepare", kind="latency", latency_s=-1.0)

    def test_none_fields_are_wildcards(self):
        spec = FaultSpec(op="prepare", kind="kill")
        assert spec.matches("prepare", 0, 0)
        assert spec.matches("prepare", 3, 17)
        assert not spec.matches("score_queries", 0, 0)

    def test_star_op_matches_everything(self):
        spec = FaultSpec(op="*", kind="error")
        assert spec.matches("prepare", 1, 2)
        assert spec.matches("serve.dispatch", 0, 0)

    def test_exact_key_is_exact(self):
        spec = FaultSpec(op="prepare", kind="kill", rank=1, task_index=2)
        assert spec.matches("prepare", 1, 2)
        assert not spec.matches("prepare", 1, 3)
        assert not spec.matches("prepare", 0, 2)


class TestFaultPlan:
    def test_take_respects_times_budget(self):
        plan = FaultPlan([FaultSpec(op="prepare", kind="error", times=2)])
        assert plan.take("prepare", 0, 0) is not None
        assert plan.take("prepare", 0, 1) is not None
        assert plan.take("prepare", 0, 2) is None
        assert plan.fired() == 2
        plan.reset()
        assert plan.take("prepare", 0, 0) is not None

    def test_first_matching_spec_wins(self):
        first = FaultSpec(op="prepare", kind="latency", latency_s=0.1)
        second = FaultSpec(op="prepare", kind="error")
        plan = FaultPlan([first, second])
        assert plan.take("prepare", 0, 0) is first
        assert plan.take("prepare", 0, 1) is second

    def test_kinds_filter_leaves_spec_unclaimed(self):
        plan = FaultPlan([FaultSpec(op="prepare", kind="kill")])
        # An inline consultation point cannot execute a kill: the spec
        # must survive for a consultation point that can.
        assert plan.take("prepare", 0, 0, kinds=("error", "latency")) is None
        assert plan.fired() == 0
        assert plan.take("prepare", 0, 0) is not None

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(op="prepare", kind="kill", rank=1, times=3),
                FaultSpec(op="*", kind="latency", latency_s=0.5, message="slow"),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()).as_dict() == plan.as_dict()

    def test_from_dict_accepts_faults_alias(self):
        plan = FaultPlan.from_dict(
            {"faults": [{"op": "prepare", "kind": "error"}]}
        )
        assert len(plan) == 1 and plan.specs[0].kind == "error"

    def test_from_dict_rejects_non_list(self):
        with pytest.raises(ValueError, match="specs"):
            FaultPlan.from_dict({"specs": {"op": "prepare"}})

    def test_from_cli_inline_and_file(self, tmp_path):
        text = FaultPlan([FaultSpec(op="prepare", kind="drop")]).to_json()
        assert FaultPlan.from_cli(text).specs[0].kind == "drop"
        path = tmp_path / "plan.json"
        path.write_text(text, encoding="utf-8")
        assert FaultPlan.from_cli(f"@{path}").specs[0].kind == "drop"

    def test_take_counts_injections(self, obs_registry):
        plan = FaultPlan([FaultSpec(op="prepare", kind="error")])
        plan.take("prepare", 0, 0)
        assert obs_registry.counter_value("faults.injected") == 1
        assert obs_registry.counter_value("faults.injected.error") == 1

    def test_empty_plan_is_falsy_noop(self):
        assert not NO_FAULTS
        assert NO_FAULTS.take("anything", 0, 0) is None


class TestActivation:
    def test_default_is_the_noop_plan(self):
        assert active_plan() is NO_FAULTS

    def test_env_plan_is_parsed_lazily(self, monkeypatch):
        text = FaultPlan([FaultSpec(op="prepare", kind="error")]).to_json()
        monkeypatch.setenv(ENV_PLAN_VAR, text)
        deactivate()  # drop the cached env plan so the new value is read
        plan = active_plan()
        assert len(plan) == 1 and plan.specs[0].op == "prepare"
        assert active_plan() is plan  # cached, not re-parsed

    def test_plan_from_env_explicit_environ(self):
        text = FaultPlan([FaultSpec(op="x", kind="drop")]).to_json()
        assert plan_from_env({ENV_PLAN_VAR: text}).specs[0].kind == "drop"
        assert plan_from_env({}) is NO_FAULTS

    def test_activate_beats_env_and_deactivate_restores(self, monkeypatch):
        monkeypatch.setenv(
            ENV_PLAN_VAR,
            FaultPlan([FaultSpec(op="env", kind="error")]).to_json(),
        )
        deactivate()
        explicit = FaultPlan([FaultSpec(op="explicit", kind="error")])
        activate(explicit)
        assert active_plan() is explicit
        deactivate()
        monkeypatch.delenv(ENV_PLAN_VAR)
        assert active_plan() is NO_FAULTS

    def test_inject_restores_previous_plan(self):
        outer = FaultPlan([FaultSpec(op="outer", kind="error")])
        inner = FaultPlan([FaultSpec(op="inner", kind="error")])
        activate(outer)
        with inject(inner):
            assert active_plan() is inner
        assert active_plan() is outer


# ----------------------------------------------------------------------
@needs_fork
@pytest.mark.parallel
class TestPoolChaos:
    def test_kill_respawns_requeues_and_matches(self, obs_registry):
        with WorkerPool(2, context={"factor": 3}) as pool:
            plan = kill_once("chaos.scale", 1)
            with inject(plan):
                assert pool.run("chaos.scale", [[1, 2], [3, 4]]) == [
                    [3, 6],
                    [9, 12],
                ]
            assert plan.fired() == 1
            # The pool healed: same call again, no faults left.
            assert pool.run("chaos.scale", [[5], [6]]) == [[15], [18]]
        assert obs_registry.counter_value("parallel.pool.restarts") == 1
        assert obs_registry.counter_value("parallel.pool.retries") == 1
        assert obs_registry.counter_value("faults.injected.kill") == 1

    @pytest.mark.parametrize("workers", (2, 4))
    def test_kill_at_every_rank_prepare_parity(
        self, workers, max_workers, obs_registry
    ):
        """The acceptance bar: kill -9 at each rank in turn; the sharded
        prepare must still be bitwise identical to the serial run."""
        workers = capped(workers, max_workers)
        graph = small_graph()
        targets = TRIPLES[:7]
        reference = make_model().prepare_many(graph, targets)
        model = make_model()
        with ShardedPreparer(model, graph, workers=workers) as preparer:
            for rank in range(workers):
                model.clear_cache()
                with inject(kill_once("prepare", rank)) as plan:
                    produced = preparer.prepare_many(graph, targets)
                assert plan.fired() == 1, f"kill at rank {rank} never fired"
                assert_samples_equal(reference, produced)
        assert obs_registry.counter_value("parallel.pool.restarts") == workers

    def test_kill_during_parallel_eval_is_bitwise(self, max_workers, obs_registry):
        workers = capped(2, max_workers)
        graph = small_graph()
        targets = TripleSet(TRIPLES[:5])
        reference = evaluate_entity_prediction(
            make_model(), graph, targets, np.random.default_rng(5), num_negatives=7
        )
        model = make_model()
        with ParallelEvaluator(model, graph, workers=workers) as evaluator:
            with inject(kill_once("score_queries", 1)) as plan:
                produced = evaluator.entity_prediction(
                    targets, np.random.default_rng(5), num_negatives=7
                )
        assert plan.fired() == 1
        assert produced == reference
        assert obs_registry.counter_value("parallel.pool.restarts") == 1

    @pytest.mark.parametrize("backend", ("pickle", "shm"))
    def test_kill_during_train_step_is_bitwise(
        self, backend, max_workers, obs_registry
    ):
        """Kill a rank mid-``train_step``: the respawned worker must remap
        the shared segments (shm) or reload broadcast params (pickle) and
        re-run the lost shard to a **bitwise identical** checkpoint."""
        workers = capped(2, max_workers)
        graph = small_graph()
        train = TripleSet(TRIPLES[:9])

        def fit(plan=None):
            model = make_model()
            config = TrainingConfig(
                epochs=2,
                batch_size=5,
                seed=3,
                parallel=ParallelConfig(workers=workers, backend=backend),
            )
            trainer = DataParallelTrainer(model, graph, train, config=config)
            if plan is None:
                history = trainer.fit()
            else:
                with inject(plan):
                    history = trainer.fit()
            return model.state_dict(), history

        reference, reference_history = fit()
        plan = kill_once("train_step", 1)
        produced, history = fit(plan)
        assert plan.fired() == 1, "the mid-step kill never fired"
        assert history.losses == reference_history.losses
        for name, value in reference.items():
            assert np.array_equal(produced[name], value), name
        assert obs_registry.counter_value("parallel.pool.restarts") == 1

    def test_injected_op_error_fails_fast_with_provenance(self, obs_registry):
        with WorkerPool(2) as pool:
            plan = FaultPlan(
                [FaultSpec(op="chaos.scale", kind="error", rank=0, message="boom")]
            )
            with inject(plan):
                with pytest.raises(WorkerError) as excinfo:
                    pool.run("chaos.scale", [[1], [2]])
            message = str(excinfo.value)
            # Application errors are not infrastructure failures: no retry,
            # one attempt, full provenance.
            assert "1 attempt(s)" in message
            assert "FaultInjected: boom" in message
            # The failed run must not poison the pool.
            assert pool.run("chaos.scale", [[1], [2]]) == [[2], [4]]
        assert obs_registry.counter_value("parallel.pool.retries") == 0

    def test_dropped_result_is_rescued_by_deadline(self, obs_registry):
        with WorkerPool(2, task_deadline_s=0.4) as pool:
            plan = FaultPlan([FaultSpec(op="chaos.scale", kind="drop", rank=0)])
            with inject(plan):
                assert pool.run("chaos.scale", [[1], [2]]) == [[2], [4]]
            assert plan.fired() == 1
        assert obs_registry.counter_value("parallel.pool.deadline_expired") >= 1
        assert obs_registry.counter_value("parallel.pool.restarts") >= 1

    def test_wedged_worker_is_rescued_by_deadline(self, obs_registry):
        with WorkerPool(2, task_deadline_s=0.4) as pool:
            plan = FaultPlan(
                [FaultSpec(op="chaos.scale", kind="latency", rank=1, latency_s=60.0)]
            )
            started = time.monotonic()
            with inject(plan):
                assert pool.run("chaos.scale", [[1], [2]]) == [[2], [4]]
            # Rescued by the deadline, not by waiting the latency out.
            assert time.monotonic() - started < 10.0
        assert obs_registry.counter_value("parallel.pool.deadline_expired") >= 1

    def test_retry_budget_exhaustion_reports_history(self, obs_registry):
        with WorkerPool(2, max_task_retries=1) as pool:
            plan = FaultPlan(
                [FaultSpec(op="chaos.scale", kind="kill", rank=0, times=10)]
            )
            with inject(plan):
                with pytest.raises(WorkerError) as excinfo:
                    pool.run("chaos.scale", [[1], [2]])
            message = str(excinfo.value)
            assert "retry budget exhausted (1 retries)" in message
            assert "2 attempt(s)" in message  # initial dispatch + 1 retry
            assert "attempt history" in message and "died" in message
            assert plan.fired() == 2
            # Supervision respawned the killer rank before giving up.
            assert pool.run("chaos.scale", [[1], [2]]) == [[2], [4]]
        assert obs_registry.counter_value("parallel.pool.restarts") == 2

    def test_close_escalates_past_a_wedged_worker(self):
        pool = WorkerPool(2, close_timeout_s=0.3)
        assert pool.run("chaos.scale", [[1], [2]]) == [[2], [4]]
        # Wedge rank 1 outside run() so close() owns the whole cleanup:
        # a worker stuck mid-op cannot make close() hang.
        pool._task_queues[1].put(
            (0, 10**9, "chaos.scale", [1], {"kind": "latency", "latency_s": 60.0})
        )
        time.sleep(0.3)  # let the worker pick the task up and wedge
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 5.0
        with pytest.raises(RuntimeError, match="closed"):
            pool.run("chaos.scale", [[1]])


# ----------------------------------------------------------------------
class TestInlinePool:
    """workers=1 runs ops in the parent: kills/drops are inexecutable and
    must be left for a consultation point that can honour them."""

    def test_kill_and_drop_are_skipped(self):
        plan = FaultPlan(
            [
                FaultSpec(op="chaos.scale", kind="kill"),
                FaultSpec(op="chaos.scale", kind="drop"),
            ]
        )
        with WorkerPool(1) as pool:
            assert pool.is_inline
            with inject(plan):
                assert pool.run("chaos.scale", [[1, 2]]) == [[2, 4]]
        assert plan.fired() == 0

    def test_error_raises_fault_injected(self):
        plan = FaultPlan([FaultSpec(op="chaos.scale", kind="error", message="inl")])
        with WorkerPool(1) as pool:
            with inject(plan):
                with pytest.raises(FaultInjected, match="inl"):
                    pool.run("chaos.scale", [[1]])
            # The plan is spent; the pool keeps working.
            assert pool.run("chaos.scale", [[1]]) == [[2]]

    def test_latency_applies(self):
        plan = FaultPlan(
            [FaultSpec(op="chaos.scale", kind="latency", latency_s=0.05)]
        )
        with WorkerPool(1) as pool:
            started = time.monotonic()
            with inject(plan):
                assert pool.run("chaos.scale", [[1]]) == [[2]]
            assert time.monotonic() - started >= 0.05
