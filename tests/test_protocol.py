"""Evaluation protocol tests with oracle and adversarial scorers."""

import numpy as np
import pytest

from repro.eval import (
    categorize_ext_triple,
    evaluate_both,
    evaluate_entity_prediction,
    evaluate_triple_classification,
    seen_relation_triples,
    unseen_relation_triples,
)
from repro.kg import KnowledgeGraph, TripleSet


class OracleScorer:
    """Scores known facts 1.0 and everything else 0.0."""

    def __init__(self, facts):
        self.facts = set(facts)
        self._noise = np.random.default_rng(0)

    def score_triples(self, graph, triples):
        # Tiny noise breaks ties among negatives without affecting order.
        return np.array(
            [
                1.0 if t in self.facts else self._noise.uniform(0, 1e-6)
                for t in triples
            ]
        )


class AntiOracleScorer(OracleScorer):
    def score_triples(self, graph, triples):
        return -super().score_triples(graph, triples)


class ConstantScorer:
    def score_triples(self, graph, triples):
        return np.zeros(len(triples))


@pytest.fixture
def setting():
    graph = KnowledgeGraph.from_triples(
        [(i, 0, (i + 1) % 20) for i in range(20)], num_entities=20, num_relations=2
    )
    targets = TripleSet([(i, 1, (i + 2) % 20) for i in range(10)])
    return graph, targets


class TestTripleClassification:
    def test_oracle_scores_100(self, setting):
        graph, targets = setting
        oracle = OracleScorer(set(graph.triples) | set(targets))
        result = evaluate_triple_classification(
            oracle, graph, targets, np.random.default_rng(0)
        )
        assert result.auc_pr == pytest.approx(100.0)

    def test_anti_oracle_scores_poorly(self, setting):
        graph, targets = setting
        anti = AntiOracleScorer(set(graph.triples) | set(targets))
        result = evaluate_triple_classification(
            anti, graph, targets, np.random.default_rng(0)
        )
        assert result.auc_pr < 70.0

    def test_empty_targets_raise(self, setting):
        graph, _ = setting
        with pytest.raises(ValueError):
            evaluate_triple_classification(
                ConstantScorer(), graph, TripleSet(), np.random.default_rng(0)
            )

    def test_counts_reported(self, setting):
        graph, targets = setting
        result = evaluate_triple_classification(
            ConstantScorer(), graph, targets, np.random.default_rng(0)
        )
        assert result.num_positives == len(targets)


class TestEntityPrediction:
    def test_oracle_ranks_first(self, setting):
        graph, targets = setting
        oracle = OracleScorer(set(graph.triples) | set(targets))
        result = evaluate_entity_prediction(
            oracle, graph, targets, np.random.default_rng(0), num_negatives=9
        )
        assert result.mrr == pytest.approx(100.0)
        assert result.hits_at_10 == pytest.approx(100.0)
        assert result.hits_at_1 == pytest.approx(100.0)

    def test_constant_scorer_near_chance(self, setting):
        graph, targets = setting
        result = evaluate_entity_prediction(
            ConstantScorer(), graph, targets, np.random.default_rng(0), num_negatives=9
        )
        # Mean tie rank over 10 candidates: 5.5 -> MRR ~ 18%.
        assert result.mrr < 30.0

    def test_deterministic_given_seed(self, setting):
        graph, targets = setting
        oracle = OracleScorer(set(graph.triples) | set(targets))
        a = evaluate_entity_prediction(
            oracle, graph, targets, np.random.default_rng(5), num_negatives=9
        )
        b = evaluate_entity_prediction(
            oracle, graph, targets, np.random.default_rng(5), num_negatives=9
        )
        assert a == b

    def test_num_queries(self, setting):
        graph, targets = setting
        result = evaluate_entity_prediction(
            ConstantScorer(), graph, targets, np.random.default_rng(0), num_negatives=5
        )
        assert result.num_queries == len(targets)


class TestEvaluateBoth:
    def test_report_keys(self, setting):
        graph, targets = setting
        report = evaluate_both(ConstantScorer(), graph, targets, seed=0, num_negatives=5)
        assert set(report.as_dict()) == {"AUC-PR", "MRR", "Hits@10", "Hits@1"}


class TestSplits:
    def test_relation_filters_partition(self):
        targets = TripleSet([(0, 0, 1), (1, 1, 2), (2, 5, 3)])
        seen = {0, 1}
        unseen_part = unseen_relation_triples(targets, seen)
        seen_part = seen_relation_triples(targets, seen)
        assert unseen_part == TripleSet([(2, 5, 3)])
        assert seen_part.union(unseen_part) == targets

    def test_categorize_ext(self):
        seen_entities = {0, 1, 2}
        seen_relations = {0, 1}
        assert categorize_ext_triple((0, 0, 1), seen_entities, seen_relations) == "seen"
        assert categorize_ext_triple((5, 0, 6), seen_entities, seen_relations) == "u_ent"
        assert categorize_ext_triple((0, 5, 1), seen_entities, seen_relations) == "u_rel"
        assert categorize_ext_triple((0, 5, 9), seen_entities, seen_relations) == "u_both"
        assert categorize_ext_triple((0, 0, 9), seen_entities, seen_relations) == "bridge"
