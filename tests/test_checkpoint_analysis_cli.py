"""Tests for checkpointing, graph analysis, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import RMPI, RMPIConfig
from repro.kg import KnowledgeGraph
from repro.kg.analysis import (
    characterise,
    connectivity_summary,
    degree_statistics,
    density,
    relation_frequencies,
    to_networkx,
)
from repro.train import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointMismatchError,
    checkpoint_metadata,
    load_checkpoint,
    migrate_state_dict,
    resolve_checkpoint_path,
    save_checkpoint,
)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        other = RMPI(family_graph.num_relations, np.random.default_rng(99))
        load_checkpoint(other, path)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert n1 == n2 and np.allclose(p1.data, p2.data)

    def test_roundtrip_preserves_scores(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        model.eval()
        before = model.score_triples(family_graph, [(0, 0, 1)])
        path = str(tmp_path / "model")
        save_checkpoint(model, path)
        clone = RMPI(family_graph.num_relations, np.random.default_rng(7))
        load_checkpoint(clone, path)  # extension-less path resolves to .npz
        clone.eval()
        after = clone.score_triples(family_graph, [(0, 0, 1)])
        assert before == pytest.approx(after)

    def test_architecture_mismatch_raises(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        other = RMPI(
            family_graph.num_relations,
            np.random.default_rng(0),
            RMPIConfig(use_disclosing=True),
        )
        with pytest.raises(KeyError):
            load_checkpoint(other, path)


class TestCheckpointMetadata:
    def test_meta_entry_written(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "model"))
        assert path.endswith(".npz")  # actual file written is returned
        meta = checkpoint_metadata(path)
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert meta["model_class"] == "RMPI"
        assert meta["num_parameters"] == model.num_parameters()

    def test_extra_meta_roundtrips_through_load(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = save_checkpoint(
            model, str(tmp_path / "model"), extra_meta={"benchmark": "family"}
        )
        clone = RMPI(family_graph.num_relations, np.random.default_rng(1))
        meta = load_checkpoint(clone, path)
        assert meta["benchmark"] == "family"

    def test_mismatch_error_is_clear_and_a_keyerror(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "model.npz"))
        other = RMPI(
            family_graph.num_relations,
            np.random.default_rng(0),
            RMPIConfig(use_disclosing=True),
        )
        with pytest.raises(CheckpointMismatchError) as excinfo:
            load_checkpoint(other, path)
        message = str(excinfo.value)
        assert "architecture mismatch" in message and "RMPI" in message
        assert isinstance(excinfo.value, KeyError)  # backwards compatible

    def test_wrong_model_class_rejected(self, tmp_path, family_graph):
        from repro.baselines import GraIL

        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "model"))
        grail = GraIL(family_graph.num_relations, np.random.default_rng(0))
        with pytest.raises(CheckpointMismatchError) as excinfo:
            load_checkpoint(grail, path)
        assert "'RMPI'" in str(excinfo.value) and "'GraIL'" in str(excinfo.value)

    def test_newer_format_version_rejected(self, tmp_path, family_graph):
        import json

        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        state = model.state_dict()
        path = str(tmp_path / "future.npz")
        meta = {"format_version": CHECKPOINT_FORMAT_VERSION + 1, "model_class": "RMPI"}
        np.savez(path, **state, **{"__meta__": np.asarray(json.dumps(meta))})
        with pytest.raises(ValueError, match="format version"):
            load_checkpoint(model, path)

    def test_legacy_checkpoint_without_meta_loads(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = str(tmp_path / "legacy.npz")
        np.savez(path, **model.state_dict())  # pre-metadata layout
        clone = RMPI(family_graph.num_relations, np.random.default_rng(1))
        assert load_checkpoint(clone, path) == {}
        assert clone.score_triples(family_graph, [(0, 0, 1)]) == pytest.approx(
            model.score_triples(family_graph, [(0, 0, 1)])
        )


def _legacy_typed_weights_layout(state: dict) -> dict:
    """Rewrite a current RMPI state dict into the PR-2-era layout: one
    ``(dim, dim)`` array per connection-pattern type instead of the stacked
    ``(T, dim, dim)`` layer parameter."""
    legacy = {}
    for name, value in state.items():
        if name.startswith("layers.items[") and name.endswith("].weight"):
            prefix = name[: -len(".weight")]
            for i in range(value.shape[0]):
                legacy[f"{prefix}.type_weights[{i}]"] = value[i]
        else:
            legacy[name] = value
    return legacy


class TestLegacyTypedWeightsMigration:
    """PR-2-era checkpoints stored per-type W_e{i} parameters; loading must
    stack them into the fused typed-linear parameter transparently."""

    def _save_legacy_checkpoint(self, model, path):
        import json

        state = _legacy_typed_weights_layout(model.state_dict())
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "model_class": type(model).__name__,
            "num_parameters": int(model.num_parameters()),
        }
        np.savez(path, **state, **{"__meta__": np.asarray(json.dumps(meta))})
        return path

    def test_legacy_layout_loads_and_preserves_scores(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        model.eval()
        expected = model.score_triples(family_graph, [(0, 0, 1), (2, 1, 0)])
        path = self._save_legacy_checkpoint(model, str(tmp_path / "legacy.npz"))

        clone = RMPI(family_graph.num_relations, np.random.default_rng(42))
        load_checkpoint(clone, path)
        clone.eval()
        np.testing.assert_array_equal(
            clone.score_triples(family_graph, [(0, 0, 1), (2, 1, 0)]), expected
        )

    def test_migrate_state_dict_stacks_in_index_order(self, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        legacy = _legacy_typed_weights_layout(model.state_dict())
        migrated = migrate_state_dict(legacy, model)
        for name, param in model.named_parameters():
            assert name in migrated
            np.testing.assert_array_equal(migrated[name], param.data)

    def test_per_type_parameter_models_untouched(self, family_graph):
        from repro.baselines import TACT

        tact = TACT(family_graph.num_relations, np.random.default_rng(0))
        state = tact.state_dict()
        migrated = migrate_state_dict(dict(state), tact)
        assert set(migrated) == set(state)
        tact.load_state_dict(migrated)  # still loads cleanly

    def test_incomplete_group_left_for_mismatch_error(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        legacy = _legacy_typed_weights_layout(model.state_dict())
        dropped = next(k for k in legacy if ".type_weights[0]" in k)
        del legacy[dropped]
        prefix = dropped.split(".type_weights[")[0]
        migrated = migrate_state_dict(legacy, model)
        # The non-contiguous group is not stacked; load_state_dict then
        # reports the mismatch instead of silently mis-ordering slices.
        assert f"{prefix}.weight" not in migrated
        with pytest.raises(KeyError):
            model.load_state_dict(migrated)


class TestCheckpointPathResolution:
    def test_existing_extensionless_file_wins_over_npz_sibling(
        self, tmp_path, family_graph
    ):
        """An extensionless checkpoint is never shadowed by an unrelated
        ``.npz`` sibling at the same stem."""
        wanted = RMPI(family_graph.num_relations, np.random.default_rng(0))
        wanted.eval()
        expected = wanted.score_triples(family_graph, [(0, 0, 1)])
        import os

        written = save_checkpoint(wanted, str(tmp_path / "tmp-store"))
        os.rename(written, str(tmp_path / "model"))  # extensionless checkpoint
        unrelated = RMPI(family_graph.num_relations, np.random.default_rng(99))
        save_checkpoint(unrelated, str(tmp_path / "model.npz"))  # sibling

        assert resolve_checkpoint_path(str(tmp_path / "model")) == str(
            tmp_path / "model"
        )
        clone = RMPI(family_graph.num_relations, np.random.default_rng(5))
        load_checkpoint(clone, str(tmp_path / "model"))
        clone.eval()
        assert clone.score_triples(family_graph, [(0, 0, 1)]) == pytest.approx(expected)

    def test_npz_suffix_appended_when_extensionless_missing(
        self, tmp_path, family_graph
    ):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        save_checkpoint(model, str(tmp_path / "model"))  # writes model.npz
        assert resolve_checkpoint_path(str(tmp_path / "model")) == str(
            tmp_path / "model.npz"
        )
        clone = RMPI(family_graph.num_relations, np.random.default_rng(5))
        load_checkpoint(clone, str(tmp_path / "model"))

    def test_missing_checkpoint_names_all_candidates(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            resolve_checkpoint_path(str(tmp_path / "nope"))
        message = str(excinfo.value)
        assert "nope" in message and "nope.npz" in message


class TestAnalysis:
    def test_degree_statistics(self, family_graph):
        stats = degree_statistics(family_graph)
        assert stats["max"] >= stats["mean"] >= 1.0

    def test_empty_graph(self):
        g = KnowledgeGraph.from_triples([])
        assert degree_statistics(g) == {"mean": 0.0, "median": 0.0, "max": 0.0}
        assert density(g) == 0.0
        assert connectivity_summary(g)["components"] == 0

    def test_relation_frequencies(self, family_graph):
        freqs = relation_frequencies(family_graph)
        assert freqs[3] == 2  # father_of occurs twice
        assert sum(freqs.values()) == len(family_graph.triples)

    def test_to_networkx(self, family_graph):
        g = to_networkx(family_graph)
        assert g.number_of_edges() == len(family_graph.triples)

    def test_connectivity(self, family_graph):
        summary = connectivity_summary(family_graph)
        assert summary["components"] == 1.0
        assert summary["largest_fraction"] == 1.0

    def test_characterise_keys(self, family_graph):
        summary = characterise(family_graph)
        assert {"density", "degree_mean", "components", "relations_present"} <= set(summary)


class TestCLI:
    def test_models(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RMPI-NE-TA" in out and "GraIL" in out

    def test_stats(self, capsys):
        assert cli_main(["stats", "--family", "WN18RR", "--version", "1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "WN18RR.v1" in out and "density" in out

    def test_run(self, capsys):
        code = cli_main(
            [
                "run",
                "--family",
                "NELL-995",
                "--version",
                "1",
                "--model",
                "TACT-base",
                "--epochs",
                "1",
                "--max-triples",
                "15",
                "--scale",
                "0.05",
                "--negatives",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AUC-PR" in out and "Hits@10" in out

    def test_full(self, capsys):
        code = cli_main(
            [
                "full",
                "--family",
                "NELL-995",
                "--train-version",
                "1",
                "--test-version",
                "3",
                "--setting",
                "fully",
                "--model",
                "TACT-base",
                "--epochs",
                "1",
                "--max-triples",
                "15",
                "--scale",
                "0.05",
            ]
        )
        assert code == 0
        assert "fully" in capsys.readouterr().out

    def test_serve_dry_run(self, capsys):
        code = cli_main(["serve", "--dry-run", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dry run" in out and "RMPI-base" in out
        assert "max_batch_size=64" in out and "untrained" in out

    def test_serve_dry_run_honours_knobs(self, capsys):
        code = cli_main(
            [
                "serve",
                "--dry-run",
                "--scale",
                "0.05",
                "--model",
                "GraIL",
                "--max-batch-size",
                "16",
                "--max-wait-ms",
                "5",
                "--no-fused",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GraIL" in out and "max_batch_size=16" in out
        assert "fused scoring: False" in out

    def test_serve_dry_run_from_checkpoint(self, tmp_path, capsys):
        from repro.experiments import make_model
        from repro.kg import build_partial_benchmark
        from repro.train import save_checkpoint

        benchmark = build_partial_benchmark("NELL-995", 1, 0.05, 0)
        model = make_model("RMPI-base", benchmark.num_relations, seed=0)
        path = save_checkpoint(model, str(tmp_path / "served"))
        code = cli_main(
            ["serve", "--dry-run", "--scale", "0.05", "--checkpoint", path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint" in out and path in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus"])
