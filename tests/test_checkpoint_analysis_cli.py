"""Tests for checkpointing, graph analysis, and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import RMPI, RMPIConfig
from repro.kg import KnowledgeGraph
from repro.kg.analysis import (
    characterise,
    connectivity_summary,
    degree_statistics,
    density,
    relation_frequencies,
    to_networkx,
)
from repro.train import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        other = RMPI(family_graph.num_relations, np.random.default_rng(99))
        load_checkpoint(other, path)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert n1 == n2 and np.allclose(p1.data, p2.data)

    def test_roundtrip_preserves_scores(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        model.eval()
        before = model.score_triples(family_graph, [(0, 0, 1)])
        path = str(tmp_path / "model")
        save_checkpoint(model, path)
        clone = RMPI(family_graph.num_relations, np.random.default_rng(7))
        load_checkpoint(clone, path)  # extension-less path resolves to .npz
        clone.eval()
        after = clone.score_triples(family_graph, [(0, 0, 1)])
        assert before == pytest.approx(after)

    def test_architecture_mismatch_raises(self, tmp_path, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        other = RMPI(
            family_graph.num_relations,
            np.random.default_rng(0),
            RMPIConfig(use_disclosing=True),
        )
        with pytest.raises(KeyError):
            load_checkpoint(other, path)


class TestAnalysis:
    def test_degree_statistics(self, family_graph):
        stats = degree_statistics(family_graph)
        assert stats["max"] >= stats["mean"] >= 1.0

    def test_empty_graph(self):
        g = KnowledgeGraph.from_triples([])
        assert degree_statistics(g) == {"mean": 0.0, "median": 0.0, "max": 0.0}
        assert density(g) == 0.0
        assert connectivity_summary(g)["components"] == 0

    def test_relation_frequencies(self, family_graph):
        freqs = relation_frequencies(family_graph)
        assert freqs[3] == 2  # father_of occurs twice
        assert sum(freqs.values()) == len(family_graph.triples)

    def test_to_networkx(self, family_graph):
        g = to_networkx(family_graph)
        assert g.number_of_edges() == len(family_graph.triples)

    def test_connectivity(self, family_graph):
        summary = connectivity_summary(family_graph)
        assert summary["components"] == 1.0
        assert summary["largest_fraction"] == 1.0

    def test_characterise_keys(self, family_graph):
        summary = characterise(family_graph)
        assert {"density", "degree_mean", "components", "relations_present"} <= set(summary)


class TestCLI:
    def test_models(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "RMPI-NE-TA" in out and "GraIL" in out

    def test_stats(self, capsys):
        assert cli_main(["stats", "--family", "WN18RR", "--version", "1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "WN18RR.v1" in out and "density" in out

    def test_run(self, capsys):
        code = cli_main(
            [
                "run",
                "--family",
                "NELL-995",
                "--version",
                "1",
                "--model",
                "TACT-base",
                "--epochs",
                "1",
                "--max-triples",
                "15",
                "--scale",
                "0.05",
                "--negatives",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AUC-PR" in out and "Hits@10" in out

    def test_full(self, capsys):
        code = cli_main(
            [
                "full",
                "--family",
                "NELL-995",
                "--train-version",
                "1",
                "--test-version",
                "3",
                "--setting",
                "fully",
                "--model",
                "TACT-base",
                "--epochs",
                "1",
                "--max-triples",
                "15",
                "--scale",
                "0.05",
            ]
        )
        assert code == 0
        assert "fully" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus"])
