"""Fast sort-based kernels vs the legacy ``np.add.at`` references.

The fast segment kernels (``np.add.reduceat``/``bincount`` over sorted
runs) must be equivalent to the legacy scatter kernels under float64 on
arbitrary ragged inputs — empty segments, single-element groups, empty
inputs.  The 1-D ``bincount`` reductions (softmax normalisers) accumulate
in exactly the same order as ``np.add.at`` and are compared **bitwise**;
the 2-D ``reduceat`` reductions may re-associate a segment's additions
(SIMD/pairwise summation inside numpy), so they are held to a
few-ULP tolerance instead.  ``typed_matmul`` is compared against its
per-type mask/matmul/concat reference, and the relational message passing
layer's fused path is compared end-to-end against the legacy loop (the
aggregation order over destinations legitimately differs).
"""

#: A-few-ULPs float64 tolerance for re-associated sums.
ULP = {"rtol": 1e-12, "atol": 1e-12}

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, legacy_kernels, ops
from repro.autograd.segment import (
    gather,
    legacy_gather,
    legacy_segment_softmax,
    legacy_segment_sum,
    segment_max_constant,
    segment_softmax,
    segment_sum,
)
from repro.core.layers import RelationalMessagePassingLayer
from repro.subgraph.linegraph import NUM_EDGE_TYPES


def ragged(seed, n, num_segments, cols=3):
    """Random ragged input: values, ids (possibly leaving segments empty)."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, cols))
    ids = rng.integers(num_segments, size=n)
    return values, ids


class TestSegmentSumEquivalence:
    @given(
        n=st.integers(0, 60),
        num_segments=st.integers(1, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_forward_exact(self, n, num_segments, seed):
        values, ids = ragged(seed, n, num_segments)
        fast = segment_sum(Tensor(values), ids, num_segments)
        legacy = legacy_segment_sum(Tensor(values), ids, num_segments)
        np.testing.assert_allclose(fast.data, legacy.data, **ULP)

    @given(
        n=st.integers(1, 40),
        num_segments=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_backward_exact(self, n, num_segments, seed):
        values, ids = ragged(seed, n, num_segments)
        upstream = np.random.default_rng(seed + 1).normal(size=(num_segments, 3))
        fast_in = Tensor(values, requires_grad=True)
        segment_sum(fast_in, ids, num_segments).backward(upstream)
        legacy_in = Tensor(values, requires_grad=True)
        legacy_segment_sum(legacy_in, ids, num_segments).backward(upstream)
        np.testing.assert_array_equal(fast_in.grad, legacy_in.grad)

    def test_empty_input(self):
        out = segment_sum(Tensor(np.zeros((0, 4))), np.zeros(0, dtype=np.int64), 3)
        assert out.shape == (3, 4)
        assert np.all(out.data == 0.0)

    def test_single_element_groups(self):
        values = np.arange(12.0).reshape(4, 3)
        out = segment_sum(Tensor(values), [3, 1, 0, 2], 4)
        np.testing.assert_array_equal(out.data, values[[2, 1, 3, 0]])

    def test_output_dtype_follows_input(self):
        v32 = Tensor(np.ones((3, 2), dtype=np.float32))
        assert segment_sum(v32, [0, 1, 1], 2).data.dtype == np.float32
        v64 = Tensor(np.ones((3, 2), dtype=np.float64))
        assert segment_sum(v64, [0, 1, 1], 2).data.dtype == np.float64


class TestGatherEquivalence:
    @given(
        rows=st.integers(1, 20),
        n=st.integers(0, 50),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_backward_exact(self, rows, n, seed):
        rng = np.random.default_rng(seed)
        table = rng.normal(size=(rows, 4))
        index = rng.integers(rows, size=n)
        upstream = rng.normal(size=(n, 4))
        fast_in = Tensor(table, requires_grad=True)
        gather(fast_in, index).backward(upstream)
        legacy_in = Tensor(table, requires_grad=True)
        legacy_gather(legacy_in, index).backward(upstream)
        fast_grad = fast_in.grad if fast_in.grad is not None else 0.0
        legacy_grad = legacy_in.grad if legacy_in.grad is not None else 0.0
        np.testing.assert_allclose(fast_grad, legacy_grad, **ULP)

    def test_negative_index_falls_back_consistently(self):
        table = np.arange(8.0).reshape(4, 2)
        fast_in = Tensor(table, requires_grad=True)
        gather(fast_in, [-1, 0, -1]).sum().backward()
        legacy_in = Tensor(table, requires_grad=True)
        legacy_gather(legacy_in, [-1, 0, -1]).sum().backward()
        np.testing.assert_array_equal(fast_in.grad, legacy_in.grad)


class TestSegmentSoftmaxEquivalence:
    @given(
        n=st.integers(1, 50),
        num_segments=st.integers(1, 10),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_forward_and_backward_exact(self, n, num_segments, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=n) * 10.0
        ids = rng.integers(num_segments, size=n)
        upstream = rng.normal(size=n)
        fast_in = Tensor(logits, requires_grad=True)
        fast = segment_softmax(fast_in, ids, num_segments)
        fast.backward(upstream)
        legacy_in = Tensor(logits, requires_grad=True)
        legacy = legacy_segment_softmax(legacy_in, ids, num_segments)
        legacy.backward(upstream)
        np.testing.assert_array_equal(fast.data, legacy.data)
        np.testing.assert_array_equal(fast_in.grad, legacy_in.grad)

    def test_segment_max_constant_matches_legacy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=30)
        ids = rng.integers(5, size=30)
        fast = segment_max_constant(values, ids, 7)  # segments 5, 6 empty
        with legacy_kernels():
            legacy = segment_max_constant(values, ids, 7)
        np.testing.assert_array_equal(fast, legacy)


class TestTypedMatmul:
    def test_matches_reference_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 5))
        weights = rng.normal(size=(NUM_EDGE_TYPES, 5, 5))
        types = rng.integers(NUM_EDGE_TYPES, size=40)
        fused = ops.typed_matmul(Tensor(x), Tensor(weights), types)
        reference = ops.legacy_typed_matmul(Tensor(x), Tensor(weights), types)
        np.testing.assert_allclose(fused.data, reference.data, rtol=0, atol=0)

    @given(
        n=st.integers(0, 30),
        num_types=st.integers(1, 6),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_reference(self, n, num_types, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 4))
        weights = rng.normal(size=(num_types, 4, 3))
        types = rng.integers(num_types, size=n)
        fused = ops.typed_matmul(Tensor(x), Tensor(weights), types)
        reference = ops.legacy_typed_matmul(Tensor(x), Tensor(weights), types)
        np.testing.assert_allclose(fused.data, reference.data, rtol=1e-12, atol=1e-12)

    def test_backward_matches_reference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(25, 4))
        weights = rng.normal(size=(NUM_EDGE_TYPES, 4, 4))
        types = rng.integers(NUM_EDGE_TYPES, size=25)
        upstream = rng.normal(size=(25, 4))

        x_fast = Tensor(x, requires_grad=True)
        w_fast = Tensor(weights, requires_grad=True)
        ops.typed_matmul(x_fast, w_fast, types).backward(upstream)

        x_ref = Tensor(x, requires_grad=True)
        w_ref = Tensor(weights, requires_grad=True)
        ops.legacy_typed_matmul(x_ref, w_ref, types).backward(upstream)

        np.testing.assert_allclose(x_fast.grad, x_ref.grad, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(w_fast.grad, w_ref.grad, rtol=1e-12, atol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(9, 3)), requires_grad=True)
        weights = Tensor(rng.normal(size=(4, 3, 3)), requires_grad=True)
        types = np.array([0, 3, 1, 1, 0, 2, 3, 3, 2])
        mix = Tensor(rng.normal(size=(9, 3)))
        check_gradients(
            lambda: ops.sum(ops.mul(ops.typed_matmul(x, weights, types), mix)),
            [x, weights],
        )

    def test_presorted_types_skip_permutation(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(10, 3))
        weights = rng.normal(size=(3, 3, 3))
        types = np.sort(rng.integers(3, size=10))
        fused = ops.typed_matmul(Tensor(x), Tensor(weights), types)
        reference = ops.legacy_typed_matmul(Tensor(x), Tensor(weights), types)
        np.testing.assert_allclose(fused.data, reference.data, rtol=1e-12, atol=1e-12)

    def test_type_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ops.typed_matmul(
                Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3, 3))), [0, 5]
            )


class TestLayerEquivalence:
    def _random_case(self, seed, num_nodes=12, num_edges=40, dim=8):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(num_nodes, dim))
        edges = np.stack(
            [
                rng.integers(num_nodes, size=num_edges),
                rng.integers(NUM_EDGE_TYPES, size=num_edges),
                rng.integers(num_nodes, size=num_edges),
            ],
            axis=1,
        ).astype(np.int64)
        return features, edges

    @pytest.mark.parametrize("use_attention,is_last", [(False, False), (True, False), (False, True)])
    def test_fused_layer_matches_legacy_loop(self, use_attention, is_last):
        features, edges = self._random_case(0)
        layer = RelationalMessagePassingLayer(8, np.random.default_rng(1))
        layer.weight.data = layer.weight.data.astype(np.float64)

        out_fast = layer(
            Tensor(features), edges, 0, use_attention, is_last
        )
        with legacy_kernels():
            out_legacy = layer(
                Tensor(features), edges, 0, use_attention, is_last
            )
        np.testing.assert_allclose(
            out_fast.data, out_legacy.data, rtol=1e-12, atol=1e-12
        )

    def test_fused_layer_gradients_match_legacy_loop(self):
        features, edges = self._random_case(5)
        layer = RelationalMessagePassingLayer(8, np.random.default_rng(2))
        layer.weight.data = layer.weight.data.astype(np.float64)
        upstream = np.random.default_rng(3).normal(size=features.shape)

        feat_fast = Tensor(features, requires_grad=True)
        layer.zero_grad()
        layer(feat_fast, edges, 0, True, False).backward(upstream)
        grad_w_fast = layer.weight.grad.copy()
        grad_f_fast = feat_fast.grad.copy()

        feat_legacy = Tensor(features, requires_grad=True)
        layer.zero_grad()
        with legacy_kernels():
            layer(feat_legacy, edges, 0, True, False).backward(upstream)
        np.testing.assert_allclose(
            grad_w_fast, layer.weight.grad, rtol=1e-10, atol=1e-10
        )
        np.testing.assert_allclose(
            grad_f_fast, feat_legacy.grad, rtol=1e-10, atol=1e-10
        )
