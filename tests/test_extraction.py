"""Enclosing/disclosing subgraph extraction tests (paper §III-B, §III-F)."""

import pytest

from repro.kg import KnowledgeGraph, TripleSet
from repro.subgraph import extract_disclosing_subgraph, extract_enclosing_subgraph


class TestEnclosing:
    def test_family_example(self, family_graph):
        # Target (A, husband_of, B) — the paper's Fig. 2 running example.
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=1)
        assert 0 in sub.entities and 1 in sub.entities
        assert (0, 0, 1) not in sub.triples  # target edge removed

    def test_target_edge_all_copies_removed(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (0, 1, 1), (1, 2, 0)])
        sub = extract_enclosing_subgraph(g, (0, 0, 1), num_hops=2)
        assert (0, 0, 1) not in sub.triples
        assert (0, 1, 1) in sub.triples  # other relations between u,v stay

    def test_intersection_semantics(self):
        # 0-1-2 chain plus a pendant 3 off node 0: 3 is within 1 hop of 0
        # but not of 2, so it's excluded from the 1-hop enclosing subgraph
        # of (0, r, 2)... and everything else is disconnected -> empty.
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (0, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 0, 2), num_hops=1)
        assert 3 not in sub.entities

    def test_two_hop_keeps_connecting_path(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (0, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 1, 2), num_hops=2)
        assert set(sub.entities) >= {0, 1, 2}
        assert (0, 0, 1) in sub.triples
        assert (1, 0, 2) in sub.triples
        assert 3 not in sub.entities  # not within 2 hops of BOTH targets... 3 is 1 hop from 0, 3 hops from 2

    def test_empty_subgraph_flag(self):
        # Disconnected target pair: no common neighborhood.
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 0, 3), num_hops=2)
        assert sub.is_empty
        assert sub.head == 0 and sub.tail == 3

    def test_targets_always_in_entity_set(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 0, 3), num_hops=2)
        assert 0 in sub.entities and 3 in sub.entities

    def test_distances_are_internal(self, family_graph):
        sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
        assert sub.distances_u[0] == 0
        assert sub.distances_v[1] == 0
        for entity, dist in sub.distances_u.items():
            assert dist <= sub.num_hops

    def test_prunes_nodes_unreachable_after_target_removal(self):
        # 0 -> 1 only via the target edge: once removed, the pair has no
        # connecting structure and the subgraph is empty.
        g = KnowledgeGraph.from_triples([(0, 0, 1)])
        sub = extract_enclosing_subgraph(g, (0, 0, 1), num_hops=2)
        assert sub.is_empty

    def test_candidate_triple_not_a_fact(self, family_graph):
        # Scoring negative candidates requires extraction of non-facts.
        sub = extract_enclosing_subgraph(family_graph, (2, 0, 3), num_hops=2)
        assert sub.relation == 0
        assert (2, 0, 3) not in sub.triples


class TestDisclosing:
    def test_union_superset_of_enclosing(self, family_graph):
        target = (0, 0, 1)
        enclosing = extract_enclosing_subgraph(family_graph, target, num_hops=2)
        disclosing = extract_disclosing_subgraph(family_graph, target, num_hops=2)
        assert set(enclosing.entities) <= set(disclosing.entities)
        assert set(enclosing.triples) <= set(disclosing.triples)

    def test_rescues_empty_enclosing(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 1, 3)])
        target = (0, 0, 3)
        enclosing = extract_enclosing_subgraph(g, target, num_hops=2)
        disclosing = extract_disclosing_subgraph(g, target, num_hops=2)
        assert enclosing.is_empty
        assert not disclosing.is_empty  # pendant edges incident to u/v remain

    def test_target_edge_removed(self, family_graph):
        disclosing = extract_disclosing_subgraph(family_graph, (0, 0, 1), num_hops=1)
        assert (0, 0, 1) not in disclosing.triples
