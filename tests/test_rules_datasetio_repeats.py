"""Tests for the rule-mining baseline, GraIL-format IO, and repeats."""

import numpy as np
import pytest

from repro.baselines import RuleBasedScorer, RuleMiner, mine_and_build_scorer
from repro.baselines.rules import COMPOSITION, EQUIVALENCE, INVERSION
from repro.experiments import aggregate, run_repeated
from repro.experiments.runner import ExperimentResult
from repro.kg import (
    KnowledgeGraph,
    TripleSet,
    load_benchmark,
    save_benchmark,
)


def rule_graph():
    """r2 is exactly the composition r0 ∘ r1; r3 is the inverse of r0."""
    triples = []
    for i in range(6):
        x, z, y = i, i + 10, i + 20
        triples += [(x, 0, z), (z, 1, y), (x, 2, y), (z, 3, x)]
    return KnowledgeGraph.from_triples(triples)


class TestRuleMiner:
    def test_finds_composition_rule(self):
        rules = RuleMiner(min_support=2, min_confidence=0.3).mine(rule_graph())
        compositions = [
            r for r in rules if r.kind == COMPOSITION and r.head == 2 and r.body == (0, 1)
        ]
        assert compositions
        assert compositions[0].confidence > 0.5

    def test_finds_inversion_rule(self):
        rules = RuleMiner(min_support=2, min_confidence=0.3).mine(rule_graph())
        inversions = [
            r for r in rules if r.kind == INVERSION and r.head == 3 and r.body == (0,)
        ]
        assert inversions

    def test_no_spurious_equivalence(self):
        rules = RuleMiner(min_support=2, min_confidence=0.3).mine(rule_graph())
        # r0 and r1 share no (x, y) pairs.
        assert not any(
            r.kind == EQUIVALENCE and {r.head, r.body[0]} == {0, 1} for r in rules
        )

    def test_rules_sorted_by_confidence(self):
        rules = RuleMiner(min_support=1, min_confidence=0.0).mine(rule_graph())
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_describe(self):
        rules = RuleMiner(min_support=2, min_confidence=0.3).mine(rule_graph())
        text = rules[0].describe()
        assert "conf=" in text and "<-" in text

    def test_empty_graph(self):
        rules = RuleMiner().mine(KnowledgeGraph.from_triples([]))
        assert rules == []


class TestRuleBasedScorer:
    def test_matching_triple_scores_higher(self):
        graph = rule_graph()
        scorer = mine_and_build_scorer(graph, min_support=2, min_confidence=0.3)
        # A fresh pair connected by r0∘r1 should score high for r2; an
        # unconnected pair should score 0.
        matched = scorer.score_triples(graph, [(0, 2, 20)])
        unmatched = scorer.score_triples(graph, [(0, 2, 21)])
        assert matched[0] > unmatched[0]
        assert unmatched[0] == pytest.approx(0.0)

    def test_inductive_application_to_new_entities(self):
        train = rule_graph()
        scorer = mine_and_build_scorer(train, min_support=2, min_confidence=0.3)
        # New graph with totally new entity ids but the same pattern.
        test = KnowledgeGraph.from_triples(
            [(100, 0, 101), (101, 1, 102)], num_entities=200, num_relations=4
        )
        scores = scorer.score_triples(test, [(100, 2, 102), (100, 2, 101)])
        assert scores[0] > scores[1]

    def test_noisy_or_accumulates(self):
        graph = rule_graph()
        scorer = mine_and_build_scorer(graph, min_support=1, min_confidence=0.0)
        score = scorer.score_triples(graph, [(0, 2, 20)])[0]
        assert 0.0 < score <= 1.0

    def test_unseen_relation_scores_zero(self):
        graph = rule_graph()
        scorer = mine_and_build_scorer(graph)
        assert scorer.score_triples(graph, [(0, 99, 20)])[0] == 0.0


class TestDatasetIO:
    def test_roundtrip(self, tmp_path, tiny_partial_benchmark):
        root = str(tmp_path / "bench")
        save_benchmark(tiny_partial_benchmark, root)
        loaded = load_benchmark(root)
        original = tiny_partial_benchmark
        assert len(loaded.train_graph.triples) == len(original.train_graph.triples)
        assert len(loaded.valid_triples) == len(original.valid_triples)
        assert len(loaded.test_triples) == len(original.test_triples)
        assert loaded.seen_relations is not None

    def test_loaded_benchmark_runs_models(self, tmp_path, tiny_partial_benchmark):
        from repro.experiments import run_experiment
        from repro.train import TrainingConfig

        root = str(tmp_path / "bench")
        save_benchmark(tiny_partial_benchmark, root)
        loaded = load_benchmark(root, name="loaded")
        result = run_experiment(
            loaded,
            "TACT-base",
            TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=10),
            num_negatives=5,
            embed_dim=8,
        )
        assert np.isfinite(list(result.metrics.values())).all()

    def test_missing_valid_file_splits(self, tmp_path, tiny_partial_benchmark):
        import os

        root = str(tmp_path / "bench")
        save_benchmark(tiny_partial_benchmark, root)
        os.remove(os.path.join(root, "train", "valid.txt"))
        loaded = load_benchmark(root)
        assert len(loaded.valid_triples) > 0
        assert not (set(loaded.train_triples) & set(loaded.valid_triples))

    def test_disjoint_entity_vocabularies(self, tmp_path, tiny_partial_benchmark):
        root = str(tmp_path / "bench")
        save_benchmark(tiny_partial_benchmark, root)
        loaded = load_benchmark(root)
        train_symbols = set(loaded.train_graph.entity_vocab.symbols())
        test_symbols = set(loaded.test_graph.entity_vocab.symbols())
        assert not (train_symbols & test_symbols)


class TestRepeats:
    def _result(self, seed, value):
        return ExperimentResult("b", "m", {"AUC-PR": value, "MRR": value / 2})

    def test_aggregate_mean_std(self):
        results = [self._result(i, v) for i, v in enumerate((80.0, 90.0))]
        agg = aggregate(results)
        assert agg.mean["AUC-PR"] == pytest.approx(85.0)
        assert agg.std["AUC-PR"] == pytest.approx(5.0)
        assert agg.runs == 2

    def test_aggregate_rejects_mixed_cells(self):
        a = ExperimentResult("b1", "m", {"AUC-PR": 1.0})
        b = ExperimentResult("b2", "m", {"AUC-PR": 2.0})
        with pytest.raises(ValueError):
            aggregate([a, b])

    def test_run_repeated_distinct_seeds(self):
        seen = []

        def once(seed):
            seen.append(seed)
            return ExperimentResult("b", "m", {"AUC-PR": float(seed)})

        agg = run_repeated(once, repeats=3, base_seed=10)
        assert seen == [10, 11, 12]
        assert agg.mean["AUC-PR"] == pytest.approx(11.0)

    def test_format_cell(self):
        agg = aggregate([self._result(0, 80.0), self._result(1, 90.0)])
        assert agg.format_cell("AUC-PR") == "85.00±5.00"

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_repeated(lambda s: self._result(s, 1.0), repeats=0)
