"""Unit suite for :mod:`repro.parallel.shm` (zero-copy transport).

Covers the shared segments in-process: block layout/round-trips, version
stamping, the read-only aliasing guard, backend resolution (explicit vs
``REPRO_PARALLEL_BACKEND``), the parameter store's publish/bind/check
protocol, and CSR adoption into (and back out of) a shared segment.  The
cross-process behaviour — bitwise backend parity under real forked
workers — lives in ``tests/test_parallel_equivalence.py`` and
``tests/test_faults.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, TripleSet
from repro.parallel.shm import (
    BACKEND_ENV_VAR,
    SharedArrayBlock,
    SharedGraphCSR,
    SharedParamStore,
    StaleParamsError,
    resolve_backend,
    segment_backend,
    shm_available,
)

from test_parallel_equivalence import TRIPLES, make_model, small_graph

#: Both segment flavours are exercised on every platform that has shm;
#: the memmap fallback must stay correct even where shm exists.
BACKENDS = ("shm", "memmap") if shm_available() else ("memmap",)


def templates():
    return {
        "w": np.arange(6, dtype=np.float32).reshape(2, 3),
        "b": np.full(4, 2.5, dtype=np.float32),
    }


# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_explicit_values_pass_through(self):
        assert resolve_backend("pickle") == "pickle"
        assert resolve_backend("shm") == "shm"
        assert resolve_backend(" SHM ") == "shm"

    def test_auto_defaults_to_pickle(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend("auto") == "pickle"
        assert resolve_backend(None) == "pickle"

    def test_auto_reads_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "shm")
        assert resolve_backend("auto") == "shm"
        monkeypatch.setenv(BACKEND_ENV_VAR, "pickle")
        assert resolve_backend("auto") == "pickle"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "shm")
        assert resolve_backend("pickle") == "pickle"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError, match="auto|pickle|shm"):
            resolve_backend("zero-copy")
        monkeypatch.setenv(BACKEND_ENV_VAR, "nonsense")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            resolve_backend("auto")

    def test_segment_backend_is_known(self):
        assert segment_backend() in ("shm", "memmap")


# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedArrayBlock:
    def test_round_trip(self, backend):
        block = SharedArrayBlock(templates(), backend=backend)
        try:
            assert block.kind == backend
            assert set(block.names()) == {"w", "b"}
            np.testing.assert_array_equal(block.view("w"), templates()["w"])
            np.testing.assert_array_equal(block.view("b"), templates()["b"])
        finally:
            block.close()

    def test_views_are_read_only(self, backend):
        block = SharedArrayBlock(templates(), backend=backend)
        try:
            view = block.view("w")
            with pytest.raises(ValueError):
                view[0, 0] = 99.0
            # A writable view is an explicit opt-in and lands in the block.
            block.view("w", writable=True)[0, 0] = 7.0
            assert block.view("w")[0, 0] == 7.0
        finally:
            block.close()

    def test_write_all_bumps_version(self, backend):
        block = SharedArrayBlock(templates(), backend=backend, copy_initial=False)
        try:
            assert block.version == 0
            assert block.write_all(templates()) == 1
            assert block.write_all(templates()) == 2
            assert block.version == 2
        finally:
            block.close()

    def test_write_validates_shape_and_dtype(self, backend):
        block = SharedArrayBlock(templates(), backend=backend)
        try:
            with pytest.raises(ValueError, match="slot"):
                block.write("w", np.zeros((3, 2), dtype=np.float32))
            with pytest.raises(ValueError, match="slot"):
                block.write("w", np.zeros((2, 3), dtype=np.float64))
            with pytest.raises(KeyError):
                block.view("nope")
        finally:
            block.close()

    def test_write_all_requires_every_slot(self, backend):
        block = SharedArrayBlock(templates(), backend=backend)
        try:
            with pytest.raises(KeyError, match="missing"):
                block.write_all({"w": templates()["w"]})
        finally:
            block.close()

    def test_writes_are_visible_through_old_views(self, backend):
        """The zero-copy contract: a view taken before a publish sees the
        new bytes (same physical pages, no re-binding needed)."""
        block = SharedArrayBlock(templates(), backend=backend)
        try:
            view = block.view("b")
            block.write("b", np.full(4, -1.0, dtype=np.float32))
            np.testing.assert_array_equal(view, np.full(4, -1.0, dtype=np.float32))
        finally:
            block.close()


# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedParamStore:
    def _state(self):
        return dict(make_model().state_dict())

    def test_publish_and_views(self, backend):
        state = self._state()
        store = SharedParamStore(state, workers=2, backend=backend)
        try:
            assert store.version == 1  # construction publishes once
            for name, array in state.items():
                np.testing.assert_array_equal(store.params.view(name), array)
            assert store.publish(state) == 2
            assert store.nbytes() > 0
        finally:
            store.close()

    def test_check_version_raises_on_mismatch(self, backend):
        store = SharedParamStore(self._state(), workers=1, backend=backend)
        try:
            store.check_version(1)
            with pytest.raises(StaleParamsError, match="version"):
                store.check_version(2)
        finally:
            store.close()

    def test_publish_model_tracks_parameter_updates(self, backend):
        model = make_model()
        store = SharedParamStore(model.state_dict(), workers=1, backend=backend)
        try:
            name, param = next(iter(model.named_parameters()))
            view = store.params.view(name)
            param.data = param.data + 1.0
            assert not np.array_equal(view, param.data)
            version = store.publish_model(model)
            assert version == 2
            np.testing.assert_array_equal(view, param.data)
        finally:
            store.close()

    def test_bind_model_installs_read_only_views(self, backend):
        model = make_model()
        store = SharedParamStore(model.state_dict(), workers=1, backend=backend)
        try:
            bound = make_model()
            store.bind_model(bound)
            for name, param in bound.named_parameters():
                assert not param.data.flags.writeable
                np.testing.assert_array_equal(
                    param.data, dict(model.named_parameters())[name].data
                )
            # Later publishes are visible through the bound parameters
            # with no rebinding.
            model.parameters()[0].data = model.parameters()[0].data * 2.0
            store.publish_model(model)
            first_name = next(iter(dict(model.named_parameters())))
            np.testing.assert_array_equal(
                dict(bound.named_parameters())[first_name].data,
                dict(model.named_parameters())[first_name].data,
            )
        finally:
            store.close()

    def test_bind_model_rejects_foreign_model(self, backend):
        store = SharedParamStore(self._state(), workers=1, backend=backend)
        try:
            foreign = make_model()
            foreign_params = dict(foreign.named_parameters())
            name = next(iter(foreign_params))
            foreign_params[name].data = np.zeros(3, dtype=np.float32)
            with pytest.raises(ValueError, match="shared slot"):
                store.bind_model(foreign)
        finally:
            store.close()

    def test_grad_round_trip(self, backend):
        state = self._state()
        store = SharedParamStore(state, workers=2, backend=backend)
        try:
            names = list(state)
            grads = {name: None for name in names}
            grads[names[0]] = np.ones_like(state[names[0]])
            present = store.write_grads(1, grads)
            assert present == [names[0]]
            views = store.grad_views(1, present)
            assert set(views) == set(names)
            np.testing.assert_array_equal(views[names[0]], grads[names[0]])
            assert all(views[name] is None for name in names[1:])
            assert not views[names[0]].flags.writeable
        finally:
            store.close()

    def test_rejects_bad_worker_count(self, backend):
        with pytest.raises(ValueError, match="workers"):
            SharedParamStore(self._state(), workers=0, backend=backend)


# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedGraphCSR:
    def test_adoption_preserves_neighbourhoods(self, backend):
        reference = small_graph()
        graph = small_graph()
        shared = SharedGraphCSR(graph, backend=backend)
        try:
            assert shared.nbytes() > 0
            for entity in range(graph.num_entities):
                assert sorted(graph.incident_edges(entity)) == sorted(
                    reference.incident_edges(entity)
                )
        finally:
            shared.close()

    def test_close_hands_back_private_arrays(self, backend):
        graph = small_graph()
        shared = SharedGraphCSR(graph, backend=backend)
        shared.close()
        # The graph outlives the segment: adjacency still answers, from
        # private copies rather than views into an unmapped segment.
        reference = small_graph()
        for entity in range(graph.num_entities):
            assert sorted(graph.incident_edges(entity)) == sorted(
                reference.incident_edges(entity)
            )


# ----------------------------------------------------------------------
class TestAdoptCSRValidation:
    def _csr(self):
        graph = small_graph()
        return graph, graph.csr_arrays()

    def test_round_trip_accepts_own_arrays(self):
        graph, (indptr, indices, edge_ids) = self._csr()
        graph.adopt_csr(indptr.copy(), indices.copy(), edge_ids.copy())
        reference = small_graph()
        for entity in range(graph.num_entities):
            assert sorted(graph.incident_edges(entity)) == sorted(
                reference.incident_edges(entity)
            )

    def test_rejects_wrong_indptr_length(self):
        graph, (indptr, indices, edge_ids) = self._csr()
        with pytest.raises(ValueError):
            graph.adopt_csr(indptr[:-1].copy(), indices, edge_ids)

    def test_rejects_mismatched_lengths(self):
        graph, (indptr, indices, edge_ids) = self._csr()
        with pytest.raises(ValueError):
            graph.adopt_csr(indptr, indices[:-1].copy(), edge_ids)

    def test_rejects_inconsistent_indptr(self):
        graph, (indptr, indices, edge_ids) = self._csr()
        bad = indptr.copy()
        bad[-1] = len(indices) + 5
        with pytest.raises(ValueError):
            graph.adopt_csr(bad, indices, edge_ids)


# ----------------------------------------------------------------------
class TestStoreWithTriples:
    """Smoke the store against the graph fixture the parity suite uses."""

    def test_store_layout_matches_model(self):
        model = make_model()
        graph = KnowledgeGraph(TripleSet(TRIPLES), num_entities=6, num_relations=7)
        model.score_triples(graph, TRIPLES[:2])  # materialise lazy params
        store = SharedParamStore(model.state_dict(), workers=2)
        try:
            bound = make_model()
            bound.score_triples(graph, TRIPLES[:2])
            store.bind_model(bound)
            produced = bound.score_triples(graph, TRIPLES[:3])
            reference = model.score_triples(graph, TRIPLES[:3])
            np.testing.assert_array_equal(produced, reference)
        finally:
            store.close()
