"""Shared dtype-aware tolerance for scoring-path parity assertions."""

from __future__ import annotations

import numpy as np


def score_tolerance() -> dict:
    """Parity tolerance for comparing two scoring paths of the same model.

    Tight under float64; float32 round-off (the engine default) makes
    path-dependent differences of a few ULPs expected.
    """
    from repro.autograd import get_default_dtype

    if get_default_dtype() == np.float64:
        return {"rtol": 1e-9, "atol": 1e-9}
    return {"rtol": 3e-5, "atol": 1e-5}
