"""Chaos suite for the serving layer: shedding, deadlines, client retries.

Drives :mod:`repro.serve` through injected dispatch faults and asserts the
overload/failure contract end to end: a saturated admission queue sheds
with 503 + ``Retry-After`` (and recovers — shedding is backpressure, not
an outage), an expired deadline surfaces as 504 without the request
outliving its budget by more than one batch window of grace, an injected
scoring fault is a 500 that leaves the scheduler serving, and the thin
client retries idempotent requests with capped jittered backoff before
giving up with :class:`ServingUnavailable`.  Saturation is made
deterministic by wedging the single dispatch thread with an injected
latency fault and watching ``plan.fired()`` — no sleep-and-hope races.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.faults import FaultPlan, FaultSpec, deactivate, inject
from repro.obs import MetricsRegistry, set_registry
from repro.serve import (
    InferenceSession,
    MicroBatchScheduler,
    ModelRegistry,
    QueueSaturated,
    SchedulerStopped,
    ServingApp,
    ServingClient,
    ServingConfig,
    ServingServer,
    ServingUnavailable,
)

pytestmark = pytest.mark.chaos

TRIPLE = [0, 0, 1]


@pytest.fixture(autouse=True)
def _pristine_faults():
    deactivate()
    yield
    deactivate()


@pytest.fixture
def obs_registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def make_app(graph, **overrides):
    registry = ModelRegistry()
    registry.register(
        "rmpi",
        RMPI(
            graph.num_relations,
            np.random.default_rng(0),
            RMPIConfig(embed_dim=16, dropout=0.0),
        ),
    )
    overrides.setdefault("max_wait_ms", 1.0)
    app = ServingApp(
        registry, graph, ServingConfig(port=0, default_model="rmpi", **overrides)
    )
    return app.start()


def wait_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


def wedge_dispatch(latency_s):
    """A plan whose first dispatch sleeps: with one scheduler thread, the
    queue behind it backs up deterministically."""
    return FaultPlan(
        [FaultSpec(op="serve.dispatch", kind="latency", latency_s=latency_s)]
    )


# ----------------------------------------------------------------------
class TestDispatchFaults:
    def test_injected_error_is_500_and_scheduler_survives(
        self, family_graph, obs_registry
    ):
        app = make_app(family_graph)
        try:
            plan = FaultPlan(
                [FaultSpec(op="serve.dispatch", kind="error", message="chaos")]
            )
            with inject(plan):
                status, body = app.handle("POST", "/score", {"triples": [TRIPLE]})
                assert status == 500
                assert "FaultInjected" in body["error"]
                assert "chaos" in body["error"]
                # The spec is spent; the same scheduler keeps serving.
                status, body = app.handle("POST", "/score", {"triples": [TRIPLE]})
                assert status == 200 and len(body["scores"]) == 1
            assert obs_registry.counter_value("faults.injected.error") == 1
        finally:
            app.close()


# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_saturated_queue_sheds_503_and_recovers(self, family_graph, obs_registry):
        app = make_app(
            family_graph, max_queue_depth=1, retry_after_s=0.5, request_deadline_s=10.0
        )
        try:
            plan = wedge_dispatch(2.0)
            background = []

            def score_in_thread():
                thread = threading.Thread(
                    target=lambda: background.append(
                        app.handle("POST", "/score", {"triples": [TRIPLE]})
                    )
                )
                thread.start()
                return thread

            with inject(plan):
                first = score_in_thread()  # occupies the dispatch thread
                wait_until(lambda: plan.fired() == 1, message="dispatch wedged")
                second = score_in_thread()  # fills the depth-1 queue
                wait_until(
                    lambda: app.scheduler._queue.qsize() >= 1,
                    message="queue to fill",
                )
                # Watermark reached: the third request must be shed NOW,
                # not queued behind two seconds of backlog.
                started = time.monotonic()
                status, body = app.handle("POST", "/score", {"triples": [TRIPLE]})
                assert time.monotonic() - started < 1.0
                assert status == 503
                assert body["retry_after"] == 0.5
                assert "saturated" in body["error"] or "queue" in body["error"]
                first.join(timeout=10)
                second.join(timeout=10)
            assert [status for status, _ in background] == [200, 200]
            # Shedding is backpressure, not an outage: next request is a 200.
            status, _ = app.handle("POST", "/score", {"triples": [TRIPLE]})
            assert status == 200
            assert obs_registry.counter_value("serve.scheduler.requests_shed") == 1
            assert obs_registry.counter_value("serve.http.requests_shed") == 1
        finally:
            app.close()

    def test_retry_after_header_over_http(self, family_graph, obs_registry):
        app = make_app(
            family_graph, max_queue_depth=1, retry_after_s=0.5, request_deadline_s=10.0
        )
        plan = wedge_dispatch(2.0)
        with ServingServer(app) as server, inject(plan):
            client = ServingClient(server.url, retries=0)
            background = []

            def score_in_thread():
                thread = threading.Thread(
                    target=lambda: background.append(
                        client.request("POST", "/score", {"triples": [TRIPLE]})
                    )
                )
                thread.start()
                return thread

            first = score_in_thread()
            wait_until(lambda: plan.fired() == 1, message="dispatch wedged")
            second = score_in_thread()
            wait_until(
                lambda: app.scheduler._queue.qsize() >= 1, message="queue to fill"
            )
            request = urllib.request.Request(
                f"{server.url}/score",
                data=json.dumps({"triples": [TRIPLE]}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 503
            # retry_after_s=0.5 rounds UP: an integral Retry-After header
            # (RFC 9110) that never tells the client to retry too early.
            assert excinfo.value.headers["Retry-After"] == "1"
            first.join(timeout=10)
            second.join(timeout=10)
        assert [status for status, _ in background] == [200, 200]

    def test_unbounded_queue_never_sheds(self, family_graph):
        scheduler_error = None
        app = make_app(family_graph, max_queue_depth=None)
        try:
            for _ in range(4):
                status, _ = app.handle("POST", "/score", {"triples": [TRIPLE]})
                assert status == 200
        except (QueueSaturated,) as error:  # pragma: no cover - regression
            scheduler_error = error
        finally:
            app.close()
        assert scheduler_error is None


# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_is_504_within_one_batch_window(
        self, family_graph, obs_registry
    ):
        app = make_app(family_graph, request_deadline_s=10.0)
        try:
            plan = wedge_dispatch(1.0)
            background = []
            with inject(plan):
                thread = threading.Thread(
                    target=lambda: background.append(
                        app.handle("POST", "/score", {"triples": [TRIPLE]})
                    )
                )
                thread.start()
                wait_until(lambda: plan.fired() == 1, message="dispatch wedged")
                # Queued behind one second of wedge with a 200ms budget:
                # must come back 504 after deadline + one batch window of
                # grace, NOT after the wedge clears.
                started = time.monotonic()
                status, body = app.handle(
                    "POST", "/score", {"triples": [TRIPLE], "deadline_ms": 200}
                )
                elapsed = time.monotonic() - started
                thread.join(timeout=10)
            assert status == 504
            assert "deadline" in body["error"]
            grace = app.config.max_wait_ms / 1000.0 + 0.25
            assert elapsed < 0.2 + grace + 0.4, (
                f"504 took {elapsed:.3f}s — outlived its deadline past the "
                "one-batch-window grace"
            )
            assert background and background[0][0] == 200
            assert (
                obs_registry.counter_value("serve.scheduler.deadline_expired") >= 1
            )
        finally:
            app.close()

    def test_client_deadline_can_only_tighten_server_cap(self, family_graph):
        # request_deadline_s=0.2 is the ceiling; a huge deadline_ms does
        # not extend it past the wedge.
        app = make_app(family_graph, request_deadline_s=0.2)
        try:
            plan = wedge_dispatch(1.0)
            background = []
            with inject(plan):
                thread = threading.Thread(
                    target=lambda: background.append(
                        app.handle("POST", "/score", {"triples": [TRIPLE]})
                    )
                )
                thread.start()
                wait_until(lambda: plan.fired() == 1, message="dispatch wedged")
                status, _ = app.handle(
                    "POST",
                    "/score",
                    {"triples": [TRIPLE], "deadline_ms": 60_000},
                )
                thread.join(timeout=10)
            assert status == 504
        finally:
            app.close()

    def test_non_positive_deadline_ms_is_400(self, family_graph):
        app = make_app(family_graph)
        try:
            status, body = app.handle(
                "POST", "/score", {"triples": [TRIPLE], "deadline_ms": 0}
            )
            assert status == 400 and "deadline_ms" in body["error"]
        finally:
            app.close()


# ----------------------------------------------------------------------
class _Always503(BaseHTTPRequestHandler):
    """A server that is permanently shedding: every POST is a 503 with a
    Retry-After hint, so a retrying client must eventually give up."""

    def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler API
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        body = json.dumps({"error": "queue saturated", "retry_after": 0.01}).encode(
            "utf-8"
        )
        self.send_response(503)
        self.send_header("Retry-After", "1")
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet test output
        return


class TestClientResilience:
    @pytest.fixture
    def dead_url(self):
        # Bind-then-close: connecting to this port is refused immediately.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        return f"http://127.0.0.1:{port}"

    def test_connection_refused_exhausts_backoff(self, dead_url, obs_registry):
        client = ServingClient(
            dead_url,
            timeout=0.5,
            retries=2,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
        )
        with pytest.raises(ServingUnavailable) as excinfo:
            client.score([tuple(TRIPLE)])
        assert excinfo.value.status == 503
        assert "2 retry(ies)" in str(excinfo.value)
        assert obs_registry.counter_value("serve.client.retries") == 2
        assert obs_registry.counter_value("serve.client.backoff_sleeps") == 2

    def test_persistent_503_exhausts_retries(self, obs_registry):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _Always503)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = ServingClient(
                url, timeout=2.0, retries=1, backoff_base_s=0.01, backoff_cap_s=0.02
            )
            with pytest.raises(ServingUnavailable, match="shedding"):
                client.score([tuple(TRIPLE)])
            assert obs_registry.counter_value("serve.client.retries") == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_raw_request_is_single_attempt(self, dead_url, obs_registry):
        client = ServingClient(dead_url, timeout=0.5, retries=5)
        with pytest.raises(ServingUnavailable):
            client.request("GET", "/health")
        assert obs_registry.counter_value("serve.client.retries") == 0

    def test_backoff_is_capped_and_seeded(self, dead_url):
        # Same seed → same jittered delays → reproducible chaos runs.
        first = ServingClient(dead_url, timeout=0.2, retries=2, backoff_seed=7)
        second = ServingClient(dead_url, timeout=0.2, retries=2, backoff_seed=7)
        draws = lambda c: [c._jitter.uniform(0, 1) for _ in range(4)]  # noqa: E731
        assert draws(first) == draws(second)


# ----------------------------------------------------------------------
class TestSchedulerStop:
    def _scheduler(self, graph, **kwargs):
        registry = ModelRegistry()
        registry.register(
            "rmpi",
            RMPI(
                graph.num_relations,
                np.random.default_rng(0),
                RMPIConfig(embed_dim=16, dropout=0.0),
            ),
        )
        session = InferenceSession(registry, graph)
        return MicroBatchScheduler(session, **kwargs)

    def test_submit_after_close_is_typed(self, family_graph):
        scheduler = self._scheduler(family_graph, max_wait_ms=0)
        scheduler.start()
        scheduler.close()
        with pytest.raises(SchedulerStopped, match="stopped"):
            scheduler.submit([tuple(TRIPLE)])

    def test_requests_racing_stop_never_hang(self, family_graph):
        """Regression: a submit that loses the race against close() must
        fail fast (SchedulerStopped) — never a future nobody resolves."""
        scheduler = self._scheduler(family_graph, max_wait_ms=1.0)
        scheduler.start()
        futures = []
        rejected = []
        barrier = threading.Barrier(5)

        def submitter():
            barrier.wait()
            for _ in range(20):
                try:
                    futures.append(scheduler.submit([tuple(TRIPLE)]))
                except SchedulerStopped:
                    rejected.append(1)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        barrier.wait()  # all submitters racing before the close lands
        scheduler.close()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        # Every accepted future resolves one way or the other, promptly.
        outcomes = {"scored": 0, "stopped": 0}
        for future in futures:
            try:
                scores = future.result(timeout=5)
                assert np.isfinite(scores).all()
                outcomes["scored"] += 1
            except SchedulerStopped:
                outcomes["stopped"] += 1
        assert outcomes["scored"] + outcomes["stopped"] == len(futures)
        assert len(futures) + len(rejected) == 80
