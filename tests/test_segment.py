"""Tests for segment (scatter/gather) operations, incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients
from repro.autograd.segment import (
    gather,
    segment_count,
    segment_mean,
    segment_softmax,
    segment_sum,
)


class TestGather:
    def test_forward(self):
        a = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather(a, [2, 0])
        assert np.allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_backward_scatters(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = gather(a, [1, 1, 2])
        out.sum().backward()
        assert np.allclose(a.grad, [[0, 0], [2, 2], [1, 1]])

    def test_gradcheck(self):
        a = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 3])
        weights = Tensor(np.arange(12.0).reshape(4, 3))
        from repro.autograd import ops

        check_gradients(lambda: ops.sum(ops.mul(gather(a, idx), weights)), [a])


class TestSegmentSum:
    def test_forward(self):
        v = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(v, [0, 0, 2], num_segments=3)
        assert np.allclose(out.data, [[3.0], [0.0], [3.0]])

    def test_empty_segment_is_zero(self):
        v = Tensor(np.ones((2, 4)))
        out = segment_sum(v, [1, 1], num_segments=3)
        assert np.allclose(out.data[0], 0.0)
        assert np.allclose(out.data[2], 0.0)

    def test_id_out_of_range_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 1))), [0, 5], num_segments=3)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 1))), [0], num_segments=3)

    def test_backward_is_gather(self):
        v = Tensor(np.ones((3, 2)), requires_grad=True)
        out = segment_sum(v, [0, 1, 0], num_segments=2)
        out.backward(np.array([[1.0, 2.0], [10.0, 20.0]]))
        assert np.allclose(v.grad, [[1, 2], [10, 20], [1, 2]])

    def test_gradcheck(self):
        v = Tensor(np.random.default_rng(1).normal(size=(5, 2)), requires_grad=True)
        seg = np.array([0, 1, 1, 3, 0])
        weights = Tensor(np.arange(8.0).reshape(4, 2))
        from repro.autograd import ops

        check_gradients(
            lambda: ops.sum(ops.mul(segment_sum(v, seg, 4), weights)), [v]
        )

    @given(
        n=st.integers(1, 30),
        num_segments=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_mass_preserved(self, n, num_segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n, 3))
        seg = rng.integers(num_segments, size=n)
        out = segment_sum(Tensor(values), seg, num_segments)
        assert np.allclose(out.data.sum(axis=0), values.sum(axis=0))


class TestSegmentMean:
    def test_forward(self):
        v = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = segment_mean(v, [0, 0, 1], num_segments=2)
        assert np.allclose(out.data, [[3.0], [10.0]])

    def test_empty_segments_zero(self):
        v = Tensor(np.ones((1, 2)))
        out = segment_mean(v, [2], num_segments=4)
        assert np.allclose(out.data[[0, 1, 3]], 0.0)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        logits = Tensor(np.array([1.0, 2.0, 3.0, -1.0, 0.5]))
        seg = np.array([0, 0, 1, 1, 1])
        out = segment_softmax(logits, seg, 2)
        assert out.data[:2].sum() == pytest.approx(1.0)
        assert out.data[2:].sum() == pytest.approx(1.0)

    def test_single_element_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([42.0])), [0], 1)
        assert out.data == pytest.approx([1.0])

    def test_matches_dense_softmax(self):
        logits = np.array([1.0, 2.0, 3.0])
        out = segment_softmax(Tensor(logits), [0, 0, 0], 1)
        dense = np.exp(logits) / np.exp(logits).sum()
        assert np.allclose(out.data, dense)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.ones((2, 2))), [0, 1], 2)

    def test_numerical_stability_large_logits(self):
        logits = Tensor(np.array([1000.0, 1000.0]))
        out = segment_softmax(logits, [0, 0], 1)
        assert np.allclose(out.data, 0.5)

    def test_gradcheck(self):
        logits = Tensor(
            np.random.default_rng(2).normal(size=7), requires_grad=True
        )
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        weights = Tensor(np.arange(7.0))
        from repro.autograd import ops

        check_gradients(
            lambda: ops.sum(ops.mul(segment_softmax(logits, seg, 3), weights)),
            [logits],
        )

    @given(
        n=st.integers(1, 20),
        num_segments=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_probabilities(self, n, num_segments, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=n) * 5
        seg = rng.integers(num_segments, size=n)
        out = segment_softmax(Tensor(logits), seg, num_segments).data
        assert (out >= 0).all() and (out <= 1).all()
        for s in np.unique(seg):
            assert out[seg == s].sum() == pytest.approx(1.0)


class TestSegmentCount:
    def test_counts(self):
        assert segment_count([0, 0, 2], 4).tolist() == [2, 0, 1, 0]
