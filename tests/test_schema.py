"""Schema graph, TransE pre-training, and projection tests."""

import numpy as np
import pytest

from repro.kg import build_ontology, family_ontology
from repro.schema import (
    DOMAIN,
    RANGE,
    SUB_CLASS_OF,
    SUB_PROPERTY_OF,
    SchemaProjection,
    TransE,
    TransEConfig,
    build_schema_graph,
    pretrain_schema_embeddings,
)


@pytest.fixture(scope="module")
def ontology():
    return build_ontology(num_relations=15, num_concepts=8, num_extension_relations=4, seed=5)


@pytest.fixture(scope="module")
def schema(ontology):
    return build_schema_graph(ontology)


class TestSchemaGraph:
    def test_every_relation_has_domain_and_range(self, ontology, schema):
        triples = schema.triples
        for rel in range(ontology.num_relations):
            has_domain = ((triples[:, 0] == rel) & (triples[:, 1] == DOMAIN)).any()
            has_range = ((triples[:, 0] == rel) & (triples[:, 1] == RANGE)).any()
            assert has_domain and has_range

    def test_subproperty_edges(self, ontology, schema):
        triples = schema.triples
        sp = triples[triples[:, 1] == SUB_PROPERTY_OF]
        assert len(sp) == len(ontology.subproperty)
        for child, parent in ontology.subproperty.items():
            assert ((sp[:, 0] == child) & (sp[:, 2] == parent)).any()

    def test_subclass_edges_exclude_root_loop(self, ontology, schema):
        triples = schema.triples
        sco = triples[triples[:, 1] == SUB_CLASS_OF]
        assert all(h != t for h, _r, t in sco)

    def test_node_id_layout(self, schema):
        assert schema.relation_node(3) == 3
        assert schema.concept_node(0) == schema.num_relations
        assert schema.num_nodes == schema.num_relations + schema.num_concepts

    def test_unseen_relations_connected_to_seen_via_concepts(self, ontology, schema):
        # The paper's key schema property: unseen (extension) relations share
        # concept nodes with seen relations.
        triples = schema.triples
        core = set(range(11))
        core_concepts = set(
            triples[(np.isin(triples[:, 0], list(core))) & (triples[:, 1] != SUB_PROPERTY_OF)][:, 2].tolist()
        )
        for rel in range(11, 15):
            rel_edges = triples[(triples[:, 0] == rel) | (triples[:, 2] == rel)]
            touches = set(rel_edges[:, 0].tolist()) | set(rel_edges[:, 2].tolist())
            assert touches - {rel}, f"extension relation {rel} isolated in schema"


class TestTransE:
    def test_training_reduces_loss(self, schema):
        model = TransE(schema, TransEConfig(dim=16, epochs=40, seed=0))
        losses = model.fit()
        assert losses[-1] < losses[0]

    def test_positive_scores_beat_corrupted(self, schema):
        model = TransE(schema, TransEConfig(dim=16, epochs=60, seed=0))
        model.fit()
        triples = schema.triples
        rng = np.random.default_rng(0)
        pos = model.score(triples[:, 0], triples[:, 1], triples[:, 2])
        corrupt = rng.integers(schema.num_nodes, size=len(triples))
        neg = model.score(triples[:, 0], triples[:, 1], corrupt)
        assert pos.mean() > neg.mean()

    def test_node_embeddings_normalised(self, schema):
        model = TransE(schema, TransEConfig(dim=16, epochs=5, seed=0))
        model.fit()
        norms = np.linalg.norm(model.node_embeddings, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_relation_vectors_shape(self, schema):
        vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=16, epochs=5))
        assert vectors.shape == (schema.num_relations, 16)

    def test_deterministic(self, schema):
        a = pretrain_schema_embeddings(schema, TransEConfig(dim=8, epochs=5, seed=3))
        b = pretrain_schema_embeddings(schema, TransEConfig(dim=8, epochs=5, seed=3))
        assert np.allclose(a, b)

    def test_related_relations_closer_than_unrelated(self, ontology, schema):
        # Relations sharing domain+range should end nearer than ones
        # sharing nothing, on average.
        vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=16, epochs=80))
        sharing, disjoint = [], []
        for i in range(ontology.num_relations):
            for j in range(i + 1, ontology.num_relations):
                si, sj = ontology.signatures[i], ontology.signatures[j]
                dist = float(np.linalg.norm(vectors[i] - vectors[j]))
                if si.domain == sj.domain and si.range == sj.range:
                    sharing.append(dist)
                elif si.domain != sj.domain and si.range != sj.range:
                    disjoint.append(dist)
        if sharing and disjoint:
            assert np.mean(sharing) < np.mean(disjoint)


class TestProjection:
    def test_output_shape(self, schema):
        vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=16, epochs=5))
        proj = SchemaProjection(vectors, output_dim=8, rng=np.random.default_rng(0))
        out = proj([0, 3, 14])
        assert out.shape == (3, 8)

    def test_gradients_flow_to_projection_not_schema(self, schema):
        vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=16, epochs=5))
        proj = SchemaProjection(vectors, output_dim=8, rng=np.random.default_rng(0))
        proj([0, 1]).sum().backward()
        assert proj.inner.weight.grad is not None
        assert proj.outer.weight.grad is not None
        assert proj.schema_vectors.grad is None  # frozen

    def test_num_relations(self, schema):
        vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=16, epochs=5))
        proj = SchemaProjection(vectors, output_dim=8, rng=np.random.default_rng(0))
        assert proj.num_relations == schema.num_relations
