"""Cross-module hypothesis property tests.

Invariants that must hold on *arbitrary* graphs, not just fixtures:

* enclosing ⊆ disclosing (entities and edges);
* the target edge never leaks into an extracted subgraph;
* autograd gradients of random composite expressions match numerical
  differentiation;
* negative sampling never returns the positive;
* model scores are permutation-invariant over batch order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, ops
from repro.kg import KnowledgeGraph, TripleSet, corrupt_triple
from repro.subgraph import extract_disclosing_subgraph, extract_enclosing_subgraph


def random_graph(seed: int, num_entities: int = 10, num_relations: int = 4, num_edges: int = 18):
    rng = np.random.default_rng(seed)
    triples = {
        (int(rng.integers(num_entities)), int(rng.integers(num_relations)), int(rng.integers(num_entities)))
        for _ in range(num_edges)
    }
    triples = {(h, r, t) for h, r, t in triples if h != t}
    return KnowledgeGraph.from_triples(
        TripleSet(sorted(triples)), num_entities=num_entities, num_relations=num_relations
    )


class TestExtractionProperties:
    @given(seed=st.integers(0, 300), hops=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_enclosing_subset_of_disclosing(self, seed, hops):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        target = graph.triples[seed % len(graph.triples)]
        enclosing = extract_enclosing_subgraph(graph, target, hops)
        disclosing = extract_disclosing_subgraph(graph, target, hops)
        assert set(enclosing.entities) <= set(disclosing.entities)
        assert set(enclosing.triples) <= set(disclosing.triples)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_target_edge_never_leaks(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        target = graph.triples[seed % len(graph.triples)]
        for extractor in (extract_enclosing_subgraph, extract_disclosing_subgraph):
            sub = extractor(graph, target, 2)
            assert target not in sub.triples

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_subgraph_edges_within_entity_set(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        target = graph.triples[0]
        sub = extract_enclosing_subgraph(graph, target, 2)
        entities = set(sub.entities)
        for head, _rel, tail in sub.triples:
            assert head in entities and tail in entities


class TestAutogradProperties:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_random_composite_expression_gradcheck(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        c = Tensor(np.abs(rng.normal(size=(3, 2))) + 0.5, requires_grad=True)

        def fn():
            x = ops.matmul(a, b)
            y = ops.sigmoid(ops.div(x, c))
            z = ops.tanh(ops.add(y, ops.mul(x, 0.1)))
            return ops.mean(ops.mul(z, z))

        check_gradients(fn, [a, b, c], atol=1e-3, rtol=1e-3)

    @given(seed=st.integers(0, 500), n=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_softmax_then_sum_is_constant(self, seed, n):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(2, n)), requires_grad=True)
        total = ops.sum(ops.softmax(logits, axis=1))
        assert float(total.data) == pytest.approx(2.0)
        total.backward()
        # Gradient of a constant function is ~0 everywhere.
        assert np.allclose(logits.grad, 0.0, atol=1e-9)


class TestSamplingProperties:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_corruption_never_returns_positive(self, seed):
        rng = np.random.default_rng(seed)
        triple = (0, 0, 1)
        negative = corrupt_triple(triple, num_entities=20, rng=rng)
        assert negative != triple
        assert negative[1] == triple[1]


class TestModelProperties:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_scores_independent_of_batch_order(self, seed):
        from repro.core import RMPI, RMPIConfig

        graph = random_graph(seed, num_edges=14)
        if len(graph.triples) < 3:
            return
        model = RMPI(graph.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=8))
        model.eval()
        triples = [graph.triples[i] for i in range(3)]
        forward = model.score_triples(graph, triples)
        backward = model.score_triples(graph, triples[::-1])
        assert np.allclose(forward, backward[::-1])


class TestStableHash:
    def test_stable_known_values(self):
        from repro.kg.hashing import stable_hash

        # CRC32 is specified; these must never change across processes.
        assert stable_hash("RMPI-base") == stable_hash("RMPI-base")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") <= 0xFFFF
        assert 0 <= stable_hash("anything", 0xFF) <= 0xFF
