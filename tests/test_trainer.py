"""Trainer tests: convergence, caps, early stopping, best-state restore."""

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.train import Trainer, TrainingConfig, train_model


@pytest.fixture
def bench(tiny_partial_benchmark):
    return tiny_partial_benchmark


def make_model(bench, seed=0):
    return RMPI(
        bench.num_relations,
        np.random.default_rng(seed),
        RMPIConfig(embed_dim=16, dropout=0.0),
    )


class TestFit:
    def test_loss_decreases(self, bench):
        model = make_model(bench)
        history = train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=8, seed=0),
        )
        assert len(history.losses) == 8
        assert history.losses[-1] < history.losses[0]

    def test_max_triples_cap(self, bench):
        model = make_model(bench)
        trainer = Trainer(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=1, max_triples_per_epoch=5, seed=0),
        )
        trainer.fit()
        # 5 positives + 5 negatives prepared at most (plus shared subgraphs).
        assert model.cache_size() <= 10

    def test_parameters_change(self, bench):
        model = make_model(bench)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=1, seed=0),
        )
        after = model.state_dict()
        changed = [k for k in before if not np.allclose(before[k], after[k])]
        assert changed

    def test_model_left_in_eval_mode(self, bench):
        model = make_model(bench)
        train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=1, seed=0),
        )
        assert not model.training

    def test_deterministic_given_seed(self, bench):
        results = []
        for _ in range(2):
            model = make_model(bench, seed=1)
            history = train_model(
                model,
                bench.train_graph,
                bench.train_triples,
                config=TrainingConfig(epochs=2, seed=1),
            )
            results.append(history.losses)
        assert results[0] == pytest.approx(results[1])


class TestValidation:
    def test_validation_recorded(self, bench):
        model = make_model(bench)
        history = train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            bench.valid_triples,
            TrainingConfig(epochs=4, validate_every=2, seed=0),
        )
        assert len(history.validation_auc_pr) >= 1
        assert history.best_epoch >= 0

    def test_early_stopping(self, bench):
        model = make_model(bench)
        history = train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            bench.valid_triples,
            TrainingConfig(epochs=50, validate_every=1, patience=1, seed=0),
        )
        # With patience 1 on a small set, training should stop well short.
        assert len(history.losses) < 50 or history.stopped_early

    def test_best_state_restored(self, bench):
        model = make_model(bench)
        trainer = Trainer(
            model,
            bench.train_graph,
            bench.train_triples,
            bench.valid_triples,
            TrainingConfig(epochs=6, validate_every=1, patience=2, seed=0),
        )
        history = trainer.fit()
        if history.best_epoch >= 0:
            final_auc = trainer._validate(history.best_epoch)
            # Restored model reproduces its best validation score.
            assert final_auc == pytest.approx(
                history.validation_auc_pr[history.best_epoch]
                if history.best_epoch < len(history.validation_auc_pr)
                else max(history.validation_auc_pr),
                abs=1e-9,
            )
