"""MaKEr baseline tests: co-occurrence, extrapolation, episodic training."""

import numpy as np
import pytest

from repro.baselines import MaKEr, ScopedMaKEr, relation_cooccurrence, train_maker
from repro.kg import KnowledgeGraph


@pytest.fixture
def model(family_graph):
    return MaKEr(family_graph.num_relations, np.random.default_rng(0), embed_dim=8)


class TestCooccurrence:
    def test_cooccurring_relations_found(self, family_graph):
        cooc = relation_cooccurrence(family_graph)
        # husband_of(A,B) shares entity A with father_of(A,D): some pattern
        # must connect relation 3 (father_of) into relation 0 (husband_of).
        patterns = cooc.neighbors.get(0, {})
        all_neighbors = set()
        for rels in patterns.values():
            all_neighbors.update(rels.tolist())
        assert 3 in all_neighbors

    def test_pattern_ids_valid(self, family_graph):
        cooc = relation_cooccurrence(family_graph)
        for patterns in cooc.neighbors.values():
            assert all(0 <= p < 6 for p in patterns)

    def test_isolated_graph(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 1, 3)])
        cooc = relation_cooccurrence(g)
        assert cooc.neighbors == {}


class TestRelationFeatures:
    def test_no_unseen_returns_table(self, model, family_graph):
        feats = model.relation_features(family_graph, set())
        assert feats is model.relation_embedding.weight

    def test_unseen_rows_differ_from_table(self, model, family_graph):
        feats = model.relation_features(family_graph, {0})
        table = model.relation_embedding.weight.data
        assert not np.allclose(feats.data[0], table[0])
        assert np.allclose(feats.data[1], table[1])

    def test_isolated_unseen_falls_back_to_table(self, model):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 1, 3)])
        feats = model.relation_features(g, {0})
        assert np.allclose(feats.data[0], model.relation_embedding.weight.data[0])

    def test_schema_fallback(self, family_graph):
        vectors = np.random.default_rng(1).normal(size=(7, 5))
        model = MaKEr(
            family_graph.num_relations,
            np.random.default_rng(0),
            embed_dim=8,
            schema_vectors=vectors,
        )
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 1, 3)])
        feats = model.relation_features(g, {0})
        assert not np.allclose(feats.data[0], model.relation_embedding.weight.data[0])


class TestEntityFeatures:
    def test_shape(self, model, family_graph):
        rel_feats = model.relation_features(family_graph, set())
        ent_feats = model.entity_features(family_graph, rel_feats)
        assert ent_feats.shape == (family_graph.num_entities, 8)

    def test_empty_graph(self, model):
        g = KnowledgeGraph(
            triples=KnowledgeGraph.from_triples([]).triples,
            num_entities=4,
            num_relations=7,
        )
        rel_feats = model.relation_features(g, set())
        assert model.entity_features(g, rel_feats).shape == (4, 8)

    def test_entity_features_structural(self, model, family_graph):
        # Entities with identical relational contexts get identical features.
        # E and D both only receive father_of from A... E: (0,3,4); D: (0,3,3)
        # plus D has son_of -> differs. Just check finiteness + variation.
        rel_feats = model.relation_features(family_graph, set())
        feats = model.entity_features(family_graph, rel_feats).data
        assert np.isfinite(feats).all()
        assert feats.std() > 0


class TestTrainingAndScoring:
    def test_training_reduces_loss(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        model = MaKEr(b.num_relations, np.random.default_rng(0), embed_dim=8)
        losses = train_maker(
            model,
            b.train_graph,
            b.train_triples,
            episodes=80,
            batch_size=16,
            learning_rate=5e-3,
            seed=0,
        )
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_score_triples_protocol(self, model, family_graph):
        scores = model.score_triples(family_graph, [(0, 0, 1), (2, 0, 3)])
        assert scores.shape == (2,)
        assert np.isfinite(scores).all()

    def test_scoped_adapter(self, model, family_graph):
        scoped = ScopedMaKEr(model, seen_relations={0, 1, 2})
        scores = scoped.score_triples(family_graph, [(0, 5, 1)])
        assert np.isfinite(scores).all()

    def test_unseen_entity_scoring(self, model, family_graph):
        # Entity features come from structure only, so ids never seen in any
        # training table still score (as long as they're in the graph).
        scores = model.score_triples(family_graph, [(4, 0, 5)])
        assert np.isfinite(scores).all()
