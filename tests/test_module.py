"""Tests for Module/Parameter: traversal, modes, state dicts."""

import numpy as np
import pytest

from repro.autograd import MLP, Dropout, Embedding, Linear, Module, ModuleList, Parameter, Tensor


class Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.blocks = ModuleList([Linear(2, 2, rng) for _ in range(2)])
        self.extra = Parameter(np.zeros(3), name="extra")
        self.lookup = {"a": Linear(2, 2, rng)}

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestParameterTraversal:
    def test_named_parameters_cover_nesting(self, rng):
        net = Net(rng)
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "blocks.items[0].weight" in names
        assert "extra" in names
        assert "lookup[a].weight" in names

    def test_parameters_count(self, rng):
        net = Net(rng)
        # fc1(2) + fc2(2) + 2 blocks(2 each) + extra + lookup(2) = 11
        assert len(net.parameters()) == 11

    def test_num_parameters(self, rng):
        lin = Linear(4, 8, rng)
        assert lin.num_parameters() == 4 * 8 + 8

    def test_zero_grad_clears(self, rng):
        net = Net(rng)
        x = Tensor(np.ones((1, 4)))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestModes:
    def test_train_eval_propagate(self, rng):
        class WithDropout(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng)

        m = WithDropout()
        m.eval()
        assert not m.drop.training
        m.train()
        assert m.drop.training

    def test_modulelist_propagation(self, rng):
        ml = ModuleList([Linear(2, 2, rng)])
        ml.eval()
        assert not ml.items[0].training


class TestStateDict:
    def test_roundtrip(self, rng):
        net1, net2 = Net(rng), Net(np.random.default_rng(99))
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["extra"][0] = 123.0
        assert net.extra.data[0] == 0.0

    def test_missing_key_raises(self, rng):
        net = Net(rng)
        state = net.state_dict()
        del state["extra"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["extra"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestLayers:
    def test_linear_shapes(self, rng):
        lin = Linear(3, 5, rng)
        out = lin(Tensor(np.ones((7, 3))))
        assert out.shape == (7, 5)

    def test_linear_no_bias(self, rng):
        lin = Linear(3, 5, rng, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb([1, 1, 3])
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_embedding_gradient_accumulates_duplicates(self, rng):
        emb = Embedding(5, 2, rng)
        emb([2, 2]).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_mlp_forward(self, rng):
        mlp = MLP([4, 8, 3], rng)
        out = mlp(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_mlp_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_dropout_eval_identity(self, rng):
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(np.ones(50))
        assert np.allclose(drop(x).data, 1.0)

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)

    def test_modulelist_not_callable(self, rng):
        with pytest.raises(TypeError):
            ModuleList([])(1)
