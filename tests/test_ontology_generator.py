"""Ontology spec + synthetic instance generator tests."""

import numpy as np
import pytest

from repro.kg import (
    Ontology,
    RelationSignature,
    build_ontology,
    generate_instance,
    split_triples,
    TripleSet,
)


@pytest.fixture(scope="module")
def ontology():
    return build_ontology(
        num_relations=20, num_concepts=10, num_extension_relations=5, seed=7
    )


class TestBuildOntology:
    def test_sizes(self, ontology):
        assert ontology.num_relations == 20
        assert len(ontology.signatures) == 20
        assert len(ontology.concept_parent) == 10

    def test_signatures_reference_valid_concepts(self, ontology):
        for sig in ontology.signatures:
            assert 0 <= sig.domain < ontology.num_concepts
            assert 0 <= sig.range < ontology.num_concepts

    def test_every_extension_relation_has_a_rule(self, ontology):
        core = set(range(15))
        for rel in range(15, 20):
            in_composition = any(r.head == rel for r in ontology.compositions)
            in_inverse = any(r.inverse == rel for r in ontology.inverses)
            in_subproperty = rel in ontology.subproperty.values()
            assert in_composition or in_inverse or in_subproperty

    def test_composition_rules_well_formed(self, ontology):
        # Typing is best-effort (later rules may re-patch a shared relation's
        # signature), but rule structure must always be sound.
        assert len(ontology.compositions) > 0
        for rule in ontology.compositions:
            assert 0 <= rule.head < ontology.num_relations
            assert 0 <= rule.body1 < ontology.num_relations
            assert 0 <= rule.body2 < ontology.num_relations
            assert rule.head not in (rule.body1, rule.body2)

    def test_deterministic_given_seed(self):
        a = build_ontology(12, seed=3)
        b = build_ontology(12, seed=3)
        assert a.signatures == b.signatures
        assert a.compositions == b.compositions

    def test_extension_must_be_strict_subset(self):
        with pytest.raises(ValueError):
            build_ontology(5, num_extension_relations=5)

    def test_leaf_concepts_nonempty(self, ontology):
        assert len(ontology.leaf_concepts()) > 0

    def test_restricted_rules_filters(self, ontology):
        kept = {0, 1, 2}
        restricted = ontology.restricted_rules(kept)
        for rule in restricted.compositions:
            assert {rule.head, rule.body1, rule.body2} <= kept
        for rule in restricted.inverses:
            assert {rule.relation, rule.inverse} <= kept

    def test_invalid_signature_rejected(self):
        with pytest.raises(ValueError):
            Ontology(
                num_concepts=2,
                concept_parent=[0, 0],
                num_relations=1,
                signatures=[RelationSignature(0, 0, 5)],
            )


class TestGenerateInstance:
    def test_respects_relation_subset(self, ontology):
        rng = np.random.default_rng(0)
        instance = generate_instance(ontology, {0, 1, 2}, 50, 60, rng)
        assert instance.relations_used <= {0, 1, 2}

    def test_entity_ids_in_range(self, ontology):
        rng = np.random.default_rng(0)
        instance = generate_instance(ontology, set(range(10)), 40, 80, rng)
        entities = instance.triples.entities()
        assert all(0 <= e < 40 for e in entities)

    def test_no_self_loops_from_base_sampling(self, ontology):
        rng = np.random.default_rng(0)
        instance = generate_instance(
            ontology, set(range(10)), 40, 100, rng, noise_fraction=0.0
        )
        # Rule chaining and base facts both skip h == t.
        assert all(h != t for h, _r, t in instance.triples)

    def test_rule_chaining_adds_facts(self, ontology):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        with_rules = generate_instance(
            ontology, set(range(15)), 60, 150, rng1, rule_fire_prob=1.0,
            noise_fraction=0.0,
        )
        without_rules = generate_instance(
            ontology, set(range(15)), 60, 150, rng2, rule_fire_prob=0.0,
            noise_fraction=0.0, max_chain_rounds=0,
        )
        assert len(with_rules.triples) > len(without_rules.triples)

    def test_composition_rule_fires(self):
        # Hand-built ontology: r2(x,z) <- r0(x,y) & r1(y,z), always fires.
        from repro.kg.ontology import CompositionRule

        ontology = Ontology(
            num_concepts=2,
            concept_parent=[0, 0],
            num_relations=3,
            signatures=[
                RelationSignature(0, 1, 1),
                RelationSignature(1, 1, 1),
                RelationSignature(2, 1, 1),
            ],
            compositions=[CompositionRule(2, 0, 1)],
        )
        rng = np.random.default_rng(0)
        instance = generate_instance(
            ontology, {0, 1, 2}, 30, 120, rng, rule_fire_prob=1.0, noise_fraction=0.0
        )
        facts = set(instance.triples)
        fired = 0
        for x, r, y in facts:
            if r != 0:
                continue
            for y2, r2, z in facts:
                if r2 == 1 and y2 == y and x != z:
                    assert (x, 2, z) in facts
                    fired += 1
        assert fired > 0

    def test_empty_relations_raise(self, ontology):
        with pytest.raises(ValueError):
            generate_instance(ontology, set(), 10, 10, np.random.default_rng(0))

    def test_deterministic_given_seed(self, ontology):
        a = generate_instance(ontology, {0, 1, 2, 3}, 40, 60, np.random.default_rng(5))
        b = generate_instance(ontology, {0, 1, 2, 3}, 40, 60, np.random.default_rng(5))
        assert a.triples == b.triples


class TestSplitTriples:
    def test_partition_sizes(self):
        triples = TripleSet([(i, 0, i + 1) for i in range(100)])
        rng = np.random.default_rng(0)
        a, b, c = split_triples(triples, (0.8, 0.1), rng)
        assert len(a) == 80 and len(b) == 10 and len(c) == 10

    def test_partition_is_disjoint_cover(self):
        triples = TripleSet([(i, 0, i + 1) for i in range(50)])
        rng = np.random.default_rng(0)
        parts = split_triples(triples, (0.5, 0.3), rng)
        union = parts[0].union(parts[1]).union(parts[2])
        assert union == triples
        assert len(parts[0]) + len(parts[1]) + len(parts[2]) == 50

    def test_fractions_over_one_raise(self):
        with pytest.raises(ValueError):
            split_triples(TripleSet([(0, 0, 1)]), (0.8, 0.5), np.random.default_rng(0))
