"""Edge-case behaviour of the subgraph pipeline.

Self-loops, parallel edges (PARA), crossed pairs (LOOP), hop-count
monotonicity, and ID-space independence — the corners that real KGs hit.
"""

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.kg import KnowledgeGraph
from repro.subgraph import (
    build_message_plan,
    build_relational_graph,
    extract_enclosing_subgraph,
)
from repro.subgraph.linegraph import LOOP, PARA


class TestSelfLoops:
    def test_self_loop_in_context_survives_pipeline(self):
        # (1,r1,1) self-loop adjacent to the target's path.
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 1), (1, 0, 2), (0, 2, 2)])
        sub = extract_enclosing_subgraph(g, (0, 2, 2), num_hops=2)
        assert (1, 1, 1) in sub.triples
        rg = build_relational_graph(sub)
        plan = build_message_plan(rg, 2)
        assert plan.num_nodes >= 1

    def test_self_loop_target_scoreable(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 0), (0, 1, 0)])
        model = RMPI(g.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=8))
        scores = model.score_triples(g, [(0, 1, 0)])
        assert np.isfinite(scores).all()


class TestParallelAndLoopPatterns:
    def test_para_edges_in_extracted_graph(self):
        # Two parallel relations between the same pair.
        g = KnowledgeGraph.from_triples([(0, 0, 1), (0, 1, 1), (0, 2, 1)])
        sub = extract_enclosing_subgraph(g, (0, 2, 1), num_hops=1)
        rg = build_relational_graph(sub)
        types = set(rg.edges[:, 1].tolist())
        assert PARA in types

    def test_loop_edges_in_extracted_graph(self):
        # r0 and r1 connect the pair in opposite directions.
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 0), (0, 2, 1)])
        sub = extract_enclosing_subgraph(g, (0, 2, 1), num_hops=1)
        rg = build_relational_graph(sub)
        types = set(rg.edges[:, 1].tolist())
        assert LOOP in types


class TestHopMonotonicity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_larger_k_never_shrinks_entity_set(self, seed):
        rng = np.random.default_rng(seed)
        triples = sorted(
            {
                (int(rng.integers(12)), int(rng.integers(3)), int(rng.integers(12)))
                for _ in range(25)
            }
        )
        triples = [(h, r, t) for h, r, t in triples if h != t]
        g = KnowledgeGraph.from_triples(triples, num_entities=12, num_relations=3)
        target = g.triples[0]
        previous: set = set()
        for hops in (1, 2, 3):
            sub = extract_enclosing_subgraph(g, target, hops)
            entities = set(sub.entities)
            assert previous <= entities
            previous = entities


class TestIdSpaceIndependence:
    def test_scores_invariant_under_entity_relabeling(self):
        # Same structure, shifted entity ids: RMPI scores must match exactly
        # (it never reads entity ids, only relations and structure).
        base = [(0, 0, 1), (1, 1, 2), (0, 2, 2), (2, 0, 3)]
        shifted = [(h + 50, r, t + 50) for h, r, t in base]
        g1 = KnowledgeGraph.from_triples(base, num_entities=100, num_relations=3)
        g2 = KnowledgeGraph.from_triples(shifted, num_entities=100, num_relations=3)
        model = RMPI(3, np.random.default_rng(0), RMPIConfig(embed_dim=8))
        model.eval()
        s1 = model.score_triples(g1, [(0, 2, 2)])
        s2 = model.score_triples(g2, [(50, 2, 52)])
        assert s1 == pytest.approx(s2)

    def test_scores_change_under_relation_relabeling(self):
        # Relations ARE meaningful: permuting them changes the score.
        base = [(0, 0, 1), (1, 1, 2), (0, 2, 2)]
        permuted = [(0, 1, 1), (1, 0, 2), (0, 2, 2)]
        g1 = KnowledgeGraph.from_triples(base, num_entities=10, num_relations=3)
        g2 = KnowledgeGraph.from_triples(permuted, num_entities=10, num_relations=3)
        model = RMPI(3, np.random.default_rng(0), RMPIConfig(embed_dim=8))
        model.eval()
        s1 = model.score_triples(g1, [(0, 2, 2)])
        s2 = model.score_triples(g2, [(0, 2, 2)])
        assert s1[0] != pytest.approx(s2[0])


class TestDenseHub:
    def test_hub_entity_does_not_blow_up(self):
        # A hub with 30 incident edges: line graph is quadratic in degree;
        # the pipeline must stay correct and bounded.
        triples = [(0, 0, i) for i in range(1, 31)] + [(1, 1, 2)]
        g = KnowledgeGraph.from_triples(triples)
        sub = extract_enclosing_subgraph(g, (1, 1, 2), num_hops=2)
        rg = build_relational_graph(sub)
        plan = build_message_plan(rg, 2)
        model = RMPI(g.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=8))
        scores = model.score_triples(g, [(1, 1, 2)])
        assert np.isfinite(scores).all()
        # Pruning keeps only what can reach the target.
        assert plan.num_nodes <= rg.num_nodes
