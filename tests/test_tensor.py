"""Tests for the Tensor core: construction, backward, graph traversal."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, default_dtype, get_default_dtype
from repro.autograd.tensor import unbroadcast


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == get_default_dtype()

    def test_from_int_array_coerces_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.data.dtype == get_default_dtype()

    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(2, dtype=np.float64)).data.dtype == np.float64
        assert Tensor(np.zeros(2, dtype=np.float32)).data.dtype == np.float32

    def test_default_dtype_override(self):
        with default_dtype("float64"):
            assert Tensor([1.0]).data.dtype == np.float64
        assert Tensor([1.0]).data.dtype == get_default_dtype()

    def test_scalar(self):
        t = Tensor(5.0)
        assert t.shape == ()
        assert t.item() == 5.0

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        assert isinstance(as_tensor(3.0), Tensor)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        c = (b * 3.0).sum()
        c.backward()
        assert a.grad is None


class TestBackward:
    def test_simple_chain(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = b + 1.0
        c.backward()
        assert a.grad == pytest.approx([3.0])

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        assert a.grad == pytest.approx([4.0])

    def test_diamond_graph_sums_paths(self):
        # f = a*a + a  ->  df/da = 2a + 1
        a = Tensor([3.0], requires_grad=True)
        out = a * a + a
        out.backward()
        assert a.grad == pytest.approx([7.0])

    def test_reused_node_many_times(self):
        a = Tensor([1.0], requires_grad=True)
        total = a
        for _ in range(10):
            total = total + a
        total.backward()
        assert a.grad == pytest.approx([11.0])

    def test_backward_seed_shape_checked(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward(np.ones(3))

    def test_explicit_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 10.0]))
        assert a.grad == pytest.approx([2.0, 20.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 1.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_for_constants(self):
        a = Tensor([1.0])
        b = Tensor([2.0], requires_grad=True)
        (a * b).backward()
        assert a.grad is None
        assert b.grad == pytest.approx([1.0])

    def test_deep_chain_is_iterative_not_recursive(self):
        # Would blow Python's recursion limit if topological sort recursed.
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 0.0
        out.backward()
        assert a.grad == pytest.approx([1.0])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 2))
        assert unbroadcast(g, (3, 2)).shape == (3, 2)

    def test_leading_axis_summed(self):
        g = np.ones((4, 3))
        out = unbroadcast(g, (3,))
        assert out.shape == (3,)
        assert np.allclose(out, 4.0)

    def test_keepdim_axis_summed(self):
        g = np.ones((3, 5))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        assert np.allclose(out, 5.0)

    def test_scalar_target(self):
        g = np.ones((2, 2))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == pytest.approx(4.0)


class TestOperatorOverloads:
    def test_radd_rsub_rmul_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        assert (1.0 + a).data == pytest.approx([3.0])
        assert (5.0 - a).data == pytest.approx([3.0])
        assert (3.0 * a).data == pytest.approx([6.0])
        assert (8.0 / a).data == pytest.approx([4.0])

    def test_neg_and_pow(self):
        a = Tensor([2.0], requires_grad=True)
        out = (-a) + a**2
        out.backward()
        assert out.data == pytest.approx([2.0])
        assert a.grad == pytest.approx([3.0])  # -1 + 2a

    def test_getitem_backward(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        assert a.grad == pytest.approx([2.0, 0.0, 1.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor([[1.0], [2.0]])
        out = (a @ b).sum()
        out.backward()
        assert a.grad == pytest.approx(np.array([[1.0, 2.0], [1.0, 2.0]]))

    def test_transpose_property(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert a.T.shape == (3, 2)
