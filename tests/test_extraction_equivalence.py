"""CSR-path vs legacy-path extraction equivalence (the engine's contract).

The vectorized engine behind ``extract_enclosing_subgraph`` /
``extract_disclosing_subgraph`` / ``extract_subgraphs_many`` must produce
*identical* ``ExtractedSubgraph`` values to the pure-Python reference path —
same entity tuple, same edge list (content AND order), same internal
distance maps — on arbitrary graphs, including self-loops, parallel
relations, empty enclosing subgraphs, and K=1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import KnowledgeGraph, NeighborhoodCache, TripleSet
from repro.subgraph import (
    extract_disclosing_subgraph,
    extract_enclosing_subgraph,
    extract_subgraphs_many,
    legacy_extract_disclosing_subgraph,
    legacy_extract_enclosing_subgraph,
)

PAIRS = (
    (extract_enclosing_subgraph, legacy_extract_enclosing_subgraph),
    (extract_disclosing_subgraph, legacy_extract_disclosing_subgraph),
)


def random_graph(seed: int, allow_self_loops: bool = True) -> KnowledgeGraph:
    rng = np.random.default_rng(seed)
    num_entities = int(rng.integers(3, 16))
    num_relations = int(rng.integers(2, 6))
    triples = sorted(
        {
            (
                int(rng.integers(num_entities)),
                int(rng.integers(num_relations)),
                int(rng.integers(num_entities)),
            )
            for _ in range(int(rng.integers(2, 40)))
        }
    )
    if not allow_self_loops:
        triples = [(h, r, t) for h, r, t in triples if h != t]
    return KnowledgeGraph.from_triples(
        TripleSet(triples), num_entities=num_entities, num_relations=num_relations
    )


def assert_identical(a, b):
    assert (a.head, a.relation, a.tail, a.num_hops) == (b.head, b.relation, b.tail, b.num_hops)
    assert a.entities == b.entities
    assert list(a.triples) == list(b.triples)  # content and order
    assert a.distances_u == b.distances_u
    assert a.distances_v == b.distances_v
    assert a.is_empty == b.is_empty


class TestEquivalenceProperty:
    @given(seed=st.integers(0, 500), hops=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_randomized_graphs(self, seed, hops):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        rng = np.random.default_rng(seed + 1)
        targets = [
            graph.triples[seed % len(graph.triples)],  # a fact
            (  # an arbitrary (possibly non-fact) pair
                int(rng.integers(graph.num_entities)),
                int(rng.integers(graph.num_relations)),
                int(rng.integers(graph.num_entities)),
            ),
        ]
        for target in targets:
            for new_fn, legacy_fn in PAIRS:
                assert_identical(new_fn(graph, target, hops), legacy_fn(graph, target, hops))

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_batched_matches_per_triple(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        targets = [graph.triples[i % len(graph.triples)] for i in range(6)]
        for kind, legacy_fn in (
            ("enclosing", legacy_extract_enclosing_subgraph),
            ("disclosing", legacy_extract_disclosing_subgraph),
        ):
            batch = extract_subgraphs_many(graph, targets, 2, kind=kind)
            for target, sub in zip(targets, batch):
                assert_identical(sub, legacy_fn(graph, target, 2))


class TestEquivalenceEdgeCases:
    def test_self_loop_target(self):
        g = KnowledgeGraph.from_triples([(0, 0, 0), (0, 1, 1), (1, 0, 0)])
        for new_fn, legacy_fn in PAIRS:
            assert_identical(new_fn(g, (0, 0, 0), 2), legacy_fn(g, (0, 0, 0), 2))

    def test_self_loop_in_context(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 1), (1, 0, 2), (0, 2, 2)])
        for new_fn, legacy_fn in PAIRS:
            assert_identical(new_fn(g, (0, 2, 2), 2), legacy_fn(g, (0, 2, 2), 2))

    def test_empty_enclosing_subgraph(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        for new_fn, legacy_fn in PAIRS:
            assert_identical(new_fn(g, (0, 0, 3), 2), legacy_fn(g, (0, 0, 3), 2))
        assert extract_enclosing_subgraph(g, (0, 0, 3), 2).is_empty

    def test_single_edge_graph_target_removed(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1)])
        for new_fn, legacy_fn in PAIRS:
            assert_identical(new_fn(g, (0, 0, 1), 2), legacy_fn(g, (0, 0, 1), 2))

    def test_k_equals_one(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (0, 0, 3), (3, 1, 2)])
        for target in [(0, 0, 1), (0, 1, 2), (2, 0, 0)]:
            for new_fn, legacy_fn in PAIRS:
                assert_identical(new_fn(g, target, 1), legacy_fn(g, target, 1))

    def test_non_fact_target(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 2), (2, 0, 3)])
        for new_fn, legacy_fn in PAIRS:
            assert_identical(new_fn(g, (0, 3, 3), 2), legacy_fn(g, (0, 3, 3), 2))


class TestDisclosingIsolationPrune:
    """Satellite bugfix: disclosing entity sets never contain isolated
    non-target nodes, and distance maps stay consistent with the kept set."""

    @given(seed=st.integers(0, 300), hops=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_every_entity_touches_an_edge_or_is_target(self, seed, hops):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        target = graph.triples[seed % len(graph.triples)]
        sub = extract_disclosing_subgraph(graph, target, hops)
        touched = set()
        for h, _r, t in sub.triples:
            touched.add(h)
            touched.add(t)
        for entity in sub.entities:
            assert entity in touched or entity in (sub.head, sub.tail)
        assert set(sub.distances_u) <= set(sub.entities)
        assert set(sub.distances_v) <= set(sub.entities)

    def test_targets_survive_total_isolation(self):
        # The only edge is the target itself: everything is pruned except
        # the target pair.
        g = KnowledgeGraph.from_triples([(0, 0, 1)])
        sub = extract_disclosing_subgraph(g, (0, 0, 1), 2)
        assert sub.entities == (0, 1)
        assert sub.is_empty
        assert sub.distances_u == {0: 0}
        assert sub.distances_v == {1: 0}


class TestNeighborhoodCache:
    def test_frontiers_are_cached_and_shared(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (2, 1, 3)])
        candidates = [(0, 0, t) for t in (1, 2, 3)]  # all share head 0
        extract_subgraphs_many(g, candidates, 2)
        # Head frontier computed once, hit twice afterwards.
        assert g.neighborhood_cache.hits >= 2
        first = g.khop_nodes(0, 2)
        hits_before = g.neighborhood_cache.hits
        second = g.khop_nodes(0, 2)
        assert second is first  # same cached array
        assert g.neighborhood_cache.hits == hits_before + 1
        assert not second.flags.writeable

    def test_lru_bound_respected(self):
        cache = NeighborhoodCache(maxsize=2)
        cache.put((0, 2), np.asarray([0]))
        cache.put((1, 2), np.asarray([1]))
        cache.put((2, 2), np.asarray([2]))
        assert len(cache) == 2
        assert cache.get((0, 2)) is None  # evicted (least recently used)
        assert cache.get((2, 2)) is not None

    def test_zero_size_disables_caching(self):
        g = KnowledgeGraph(
            TripleSet([(0, 0, 1)]), 2, 1, neighborhood_cache_size=0
        )
        g.khop_nodes(0, 2)
        g.khop_nodes(0, 2)
        assert len(g.neighborhood_cache) == 0
        assert g.neighborhood_cache.hits == 0

    def test_cached_results_equal_fresh_results(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (2, 1, 3), (3, 2, 0)])
        target = (0, 0, 2)
        first = extract_enclosing_subgraph(g, target, 2)
        second = extract_enclosing_subgraph(g, target, 2)  # served from cache
        assert_identical(first, second)
