"""Tests for :mod:`repro.obs` — registry, spans, exporters, fork-merge.

The fork-merge parity sweep is the load-bearing case: a ``WorkerPool``
run at workers ∈ {1, 2, 4} must leave the parent registry with the same
totals a serial run produces, because worker children reset their
inherited registry at startup and ship per-task deltas back through the
result channel.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    render_json,
    render_text,
    set_registry,
    span,
)
from repro.obs.registry import Histogram
from repro.parallel import WorkerPool
from repro.parallel.pool import fork_available, register_op


@pytest.fixture
def registry():
    """A fresh process-wide registry, restored after the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates_and_rejects_decrease(self, registry):
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter_value("a.b") == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_high_water_mark(self, registry):
        gauge = registry.gauge("queue.depth")
        gauge.set(4)
        gauge.set(2)
        assert registry.gauge_value("queue.depth") == 2
        gauge.set_max(7)
        gauge.set_max(3)  # below the mark: ignored
        assert registry.gauge_value("queue.depth") == 7

    def test_same_name_different_kind_is_an_error(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_metric_objects_are_cached(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")

    def test_reset_zeroes_in_place_and_scopes_to_prefix(self, registry):
        counter = registry.counter("model.m0.calls")
        other = registry.counter("serve.requests")
        counter.inc(5)
        other.inc(2)
        registry.reset(prefix="model.m0.")
        assert registry.counter_value("model.m0.calls") == 0
        assert registry.counter_value("serve.requests") == 2
        # The live reference keeps working after the reset.
        counter.inc()
        assert registry.counter_value("model.m0.calls") == 1

    def test_merge_sums_counters_and_maxes_gauges(self, registry):
        registry.counter("n").inc(3)
        registry.gauge("peak").set(5)
        delta = {"counters": {"n": 2.0}, "gauges": {"peak": 4.0, "new": 9.0}}
        registry.merge(delta)
        assert registry.counter_value("n") == 5
        assert registry.gauge_value("peak") == 5  # incoming 4 < current 5
        assert registry.gauge_value("new") == 9

    def test_collect_reset_ships_delta_once(self, registry):
        registry.counter("n").inc(3)
        delta = registry.collect(reset=True)
        assert delta["counters"]["n"] == 3
        assert registry.counter_value("n") == 0
        other = MetricsRegistry()
        other.merge(delta)
        other.merge(registry.collect(reset=True))  # empty second delta
        assert other.counter_value("n") == 3


# ---------------------------------------------------------------------------
# Histogram edges
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_empty_histogram(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None
        assert hist.min is None and hist.max is None

    def test_single_sample_lands_in_its_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        assert hist.counts == [0, 1, 0, 0]
        assert hist.count == 1
        assert hist.quantile(0.0) == 2.0
        assert hist.quantile(1.0) == 2.0
        assert hist.min == hist.max == 1.5

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        hist.observe(250.0)
        assert hist.counts == [0, 0, 2]
        assert hist.quantile(0.5) == 250.0  # no bound: the known extreme
        assert hist.quantile(0.99) == 250.0

    def test_quantiles_at_bucket_resolution(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0):
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 100.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_merge_requires_matching_buckets(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        bad = {
            "histograms": {
                "h": {
                    "buckets": [1.0, 5.0],
                    "counts": [1, 0, 0],
                    "count": 1,
                    "sum": 0.5,
                    "min": 0.5,
                    "max": 0.5,
                }
            }
        }
        with pytest.raises(ValueError):
            registry.merge(bad)

    def test_merge_sums_bucket_counts_and_folds_extremes(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        delta = {
            "histograms": {
                "h": {
                    "buckets": [1.0, 2.0],
                    "counts": [0, 1, 1],
                    "count": 2,
                    "sum": 7.5,
                    "min": 1.5,
                    "max": 6.0,
                }
            }
        }
        registry.merge(delta)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == 8.0
        assert hist.min == 0.5 and hist.max == 6.0


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
class TestSpans:
    def test_span_records_histograms_and_calls(self, registry):
        with span("unit.work") as timer:
            pass
        assert timer.elapsed_s >= 0.0
        snap = registry.snapshot()
        assert snap["histograms"]["span.unit.work.ms"]["count"] == 1
        assert snap["histograms"]["span.unit.work.self_ms"]["count"] == 1
        assert snap["counters"]["span.unit.work.calls"] == 1

    def test_nested_span_self_time_excludes_children(self, registry):
        with span("outer"):
            with span("inner"):
                pass
        snap = registry.snapshot()["histograms"]
        outer_total = snap["span.outer.ms"]["sum"]
        outer_self = snap["span.outer.self_ms"]["sum"]
        inner_total = snap["span.inner.ms"]["sum"]
        assert outer_self <= outer_total
        assert outer_total >= inner_total

    def test_decorator_counts_every_call_and_recursion(self, registry):
        @span("unit.fib")
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        assert fib(4) == 3
        assert registry.counter_value("span.unit.fib.calls") == 9

    def test_private_registry_keeps_global_clean(self, registry):
        private = MetricsRegistry()
        with span("driver.request", private):
            pass
        assert private.counter_value("span.driver.request.calls") == 1
        assert "span.driver.request.calls" not in registry.names()

    def test_span_follows_set_registry_swap(self, registry):
        timer = span("swapped")
        with timer:
            pass
        assert registry.counter_value("span.swapped.calls") == 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def test_render_json_round_trips_snapshot(self, registry):
        registry.counter("a.calls").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        parsed = json.loads(render_json(registry))
        assert parsed == registry.snapshot()

    def test_render_text_exposition(self, registry):
        registry.counter("serve.http.requests").inc(3)
        registry.gauge("serve.scheduler.queue_depth").set(2)
        hist = registry.histogram("req.ms", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(120.0)
        text = render_text(registry)
        assert "serve_http_requests_total 3" in text
        assert "serve_scheduler_queue_depth 2" in text
        assert 'req_ms_bucket{le="1"} 1' in text
        assert 'req_ms_bucket{le="+Inf"} 2' in text
        assert "req_ms_count 2" in text
        assert "req_ms_max 120" in text

    def test_render_text_accepts_snapshot_dict(self, registry):
        registry.counter("n").inc()
        assert render_text(registry.snapshot()) == render_text(registry)

    def test_render_text_empty_registry(self):
        assert render_text(MetricsRegistry()) == ""


# ---------------------------------------------------------------------------
# Fork-merge parity
# ---------------------------------------------------------------------------
@register_op("obs_test_observe")
def _obs_test_observe(context, payload):
    """Worker op: record one span + a counter per item, return the count."""
    with span("obstest.task"):
        registry = get_registry()
        registry.counter("obstest.items").inc(len(payload))
        registry.gauge("obstest.largest").set_max(len(payload))
    return len(payload)


@pytest.mark.parallel
@pytest.mark.skipif(not fork_available(), reason="requires fork start method")
class TestForkMergeParity:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_worker_deltas_merge_to_serial_totals(
        self, workers, max_workers, registry
    ):
        workers = min(workers, max_workers)
        payloads = [[0] * (rank + 1) for rank in range(workers)]
        expected_items = sum(len(p) for p in payloads)

        with WorkerPool(workers, context={}) as pool:
            results = pool.run("obs_test_observe", payloads)

        assert results == [len(p) for p in payloads]
        assert registry.counter_value("obstest.items") == expected_items
        assert registry.gauge_value("obstest.largest") == max(map(len, payloads))
        assert registry.counter_value("span.obstest.task.calls") == workers
        snap = registry.snapshot()
        assert snap["histograms"]["span.obstest.task.ms"]["count"] == workers

    def test_parent_metrics_not_double_counted(self, registry, max_workers):
        workers = min(2, max_workers)
        # Parent-side activity before the pool run: the forked children
        # must reset their inherited copy, not re-ship it.
        registry.counter("obstest.items").inc(100)
        with WorkerPool(workers, context={}) as pool:
            pool.run("obs_test_observe", [[0]] * workers)
        assert registry.counter_value("obstest.items") == 100 + workers
