"""Engine policy tests: no-grad mode, dtype policy, optimizer fast paths,
one-pass training, merge-plan reuse, and float32/float64 score parity."""

import numpy as np
import pytest

from engine_tolerances import score_tolerance
from repro.autograd import (
    Adam,
    Parameter,
    Tensor,
    clip_grad_norm,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    ops,
    set_default_dtype,
)
from repro.autograd.segment import gather, segment_softmax, segment_sum
from repro.core import RMPI, RMPIConfig
from repro.train import Trainer, TrainingConfig, train_model


def make_model(bench, seed=0, **config_kwargs):
    config_kwargs.setdefault("embed_dim", 16)
    config_kwargs.setdefault("dropout", 0.0)
    return RMPI(
        bench.num_relations, np.random.default_rng(seed), RMPIConfig(**config_kwargs)
    )


class TestNoGrad:
    def test_ops_build_no_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = ops.mul(ops.add(a, 2.0), a)
        assert out._backward_fn is None
        assert out._parents == ()
        assert not out.requires_grad

    def test_segment_ops_build_no_graph(self):
        a = Tensor(np.ones((4, 2)), requires_grad=True)
        logits = Tensor(np.ones(4), requires_grad=True)
        with no_grad():
            assert gather(a, [0, 1])._backward_fn is None
            assert segment_sum(a, [0, 0, 1, 1], 2)._backward_fn is None
            assert segment_softmax(logits, [0, 0, 1, 1], 2)._backward_fn is None

    def test_values_identical_to_grad_mode(self):
        a = Tensor(np.linspace(-2, 2, 8), requires_grad=True)

        def compute():
            return ops.sum(ops.relu(ops.mul(a, a)))

        with_graph = compute()
        with no_grad():
            without_graph = compute()
        assert with_graph.data == without_graph.data

    def test_nesting_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_decorator_form(self):
        @no_grad()
        def score():
            return ops.add(Tensor([1.0], requires_grad=True), 1.0)

        assert score()._backward_fn is None

    def test_model_scores_match_grad_mode(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        model.eval()
        triples = list(bench.train_triples)[:4]
        in_grad_mode = model.score_batch_fused(bench.train_graph, triples)
        assert in_grad_mode._backward_fn is not None
        with no_grad():
            graph_free = model.score_batch_fused(bench.train_graph, triples)
        assert graph_free._backward_fn is None
        assert not graph_free.requires_grad
        np.testing.assert_array_equal(in_grad_mode.data, graph_free.data)

    def test_score_triples_runs_under_no_grad(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        triples = list(bench.train_triples)[:2]
        seen = {}
        original = model.head.forward

        def spy(*args, **kwargs):
            seen["grad_enabled"] = is_grad_enabled()
            return original(*args, **kwargs)

        model.head.forward = spy
        try:
            model.score_triples(bench.train_graph, triples)
            assert seen["grad_enabled"] is False
            seen.clear()
            model.score_triples_fused(bench.train_graph, triples)
            assert seen["grad_enabled"] is False
        finally:
            del model.head.forward


class TestDtypePolicy:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32

    def test_set_and_restore(self):
        set_default_dtype("float64")
        try:
            assert get_default_dtype() == np.float64
            assert Tensor([1.0]).data.dtype == np.float64
        finally:
            set_default_dtype("float32")

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype("int32")

    def test_model_parameters_follow_policy(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        assert all(
            p.data.dtype == get_default_dtype()
            for p in make_model(bench).parameters()
        )
        with default_dtype("float64"):
            wide = make_model(bench)
        assert all(p.data.dtype == np.float64 for p in wide.parameters())

    def test_scores_are_float32_under_default(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench, use_disclosing=True)
        model.eval()
        scores = model.score_batch_fused(
            bench.train_graph, list(bench.train_triples)[:3]
        )
        assert scores.data.dtype == np.float32

    def test_float32_float64_score_parity_on_trained_model(
        self, tiny_partial_benchmark
    ):
        bench = tiny_partial_benchmark
        model = make_model(bench, use_disclosing=True, use_target_attention=True)
        train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=2, seed=0),
        )
        with default_dtype("float64"):
            wide = make_model(bench, use_disclosing=True, use_target_attention=True)
        wide.load_state_dict(model.state_dict())  # casts to float64
        triples = list(bench.train_triples)[:12]
        narrow_scores = model.score_triples(bench.train_graph, triples)
        wide_scores = wide.score_triples(bench.train_graph, triples)
        np.testing.assert_allclose(narrow_scores, wide_scores, rtol=1e-4, atol=1e-4)


class TestOptimizerFastPaths:
    def test_clip_grad_norm_matches_reference(self):
        rng = np.random.default_rng(0)
        params = [Parameter(rng.normal(size=shape)) for shape in [(3, 4), (7,), (2, 2)]]
        grads = [rng.normal(size=p.shape) for p in params]
        for p, g in zip(params, grads):
            p.grad = g.copy()
        reference = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
        returned = clip_grad_norm(params, max_norm=reference / 2.0)
        assert returned == pytest.approx(reference)
        scale = (reference / 2.0) / reference
        for p, g in zip(params, grads):
            np.testing.assert_allclose(p.grad, g * scale)

    def test_clip_noop_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        assert clip_grad_norm([p], max_norm=10.0) == pytest.approx(5.0)
        np.testing.assert_array_equal(p.grad, [3.0, 4.0])

    def test_adam_step_matches_reference(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(4, 3))
        param = Parameter(data.copy())
        opt = Adam([param], lr=0.01, weight_decay=0.1)

        # Reference Adam (the original out-of-place formulation).
        ref = data.copy()
        m = np.zeros_like(ref)
        v = np.zeros_like(ref)
        for step in range(1, 4):
            grad = rng.normal(size=ref.shape)
            param.grad = grad.copy()
            opt.step()
            grad_ref = grad + 0.1 * ref
            m = 0.9 * m + 0.1 * grad_ref
            v = 0.999 * v + 0.001 * grad_ref**2
            m_hat = m / (1.0 - 0.9**step)
            v_hat = v / (1.0 - 0.999**step)
            ref = ref - 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(param.data, ref, rtol=1e-12, atol=1e-12)

    def test_adam_moments_updated_in_place(self):
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        m_buffer, v_buffer = opt._m[0], opt._v[0]
        param.grad = np.ones(3)
        opt.step()
        assert opt._m[0] is m_buffer and opt._v[0] is v_buffer
        assert np.all(m_buffer != 0.0) and np.all(v_buffer != 0.0)


class TestOnePassTrainingStep:
    def test_matches_two_pass_losses(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark

        def run(one_pass):
            model = make_model(bench, seed=3)
            history = train_model(
                model,
                bench.train_graph,
                bench.train_triples,
                config=TrainingConfig(epochs=2, seed=3, one_pass_step=one_pass),
            )
            return history.losses

        np.testing.assert_allclose(run(True), run(False), rtol=1e-3)

    def test_loss_decreases_with_one_pass(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench, seed=0)
        history = train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            config=TrainingConfig(epochs=6, seed=0, one_pass_step=True),
        )
        assert history.losses[-1] < history.losses[0]


class TestMergePlanReuse:
    def test_repeated_batches_reuse_merged_plan(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        model.eval()
        triples = list(bench.train_triples)[:5]
        samples = model.prepared_many(bench.train_graph, triples)
        first = model._merged_plan(samples)
        second = model._merged_plan(samples)
        assert first is second
        assert len(model._merge_cache) == 1

    def test_cache_bounded(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        model.eval()
        model._merge_cache_size = 2
        triples = list(bench.train_triples)[:6]
        samples = model.prepared_many(bench.train_graph, triples)
        for i in range(4):
            model._merged_plan(samples[i : i + 2])
        assert len(model._merge_cache) <= 2

    def test_training_mode_does_not_populate_cache(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        model.train()
        samples = model.prepared_many(
            bench.train_graph, list(bench.train_triples)[:3]
        )
        model._merged_plan(samples)
        # Training batches never repeat (reshuffle + fresh negatives), so
        # caching there would only pin dead plans.
        assert len(model._merge_cache) == 0

    def test_clear_cache_clears_merges(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench)
        model.eval()
        samples = model.prepared_many(
            bench.train_graph, list(bench.train_triples)[:3]
        )
        model._merged_plan(samples)
        model.clear_cache()
        assert len(model._merge_cache) == 0

    def test_scores_consistent_through_cache(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        model = make_model(bench, use_disclosing=True)
        model.eval()
        triples = list(bench.train_triples)[:4]
        first = model.score_triples_fused(bench.train_graph, triples)
        second = model.score_triples_fused(bench.train_graph, triples)
        np.testing.assert_array_equal(first, second)


class TestSegmentDtypeSatellites:
    def test_segment_sum_no_longer_forces_float64(self):
        out = segment_sum(Tensor(np.ones((2, 3), dtype=np.float32)), [0, 1], 2)
        assert out.data.dtype == np.float32

    def test_zero_neighbor_rows_follow_model_dtype(self, tiny_partial_benchmark):
        bench = tiny_partial_benchmark
        with default_dtype("float64"):
            model = make_model(bench, use_disclosing=True)
        model.eval()
        scores = model.score_triples(
            bench.train_graph, list(bench.train_triples)[:3]
        )
        # A float64 model stays float64 end to end (no float32 zero-row
        # contamination); score_triples reports float64 regardless.
        fused = model.score_batch_fused(
            bench.train_graph, list(bench.train_triples)[:3]
        )
        assert fused.data.dtype == np.float64
        np.testing.assert_allclose(
            scores, fused.data.reshape(-1), **score_tolerance()
        )
