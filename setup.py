"""Legacy setup shim — the offline environment lacks the `wheel` package, so
PEP 517 editable installs fail; `setup.py develop` works with metadata drawn
from pyproject via setuptools' beta support, declared here explicitly."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RMPI: Relational Message Passing for Fully Inductive Knowledge "
        "Graph Completion (ICDE 2023) — full reproduction"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
)
